"""The ReMICSS protocol node and the point-to-point testbed wiring.

:class:`RemicssNode` assembles the send and receive paths over a set of
channel ports.  :class:`PointToPointNetwork` builds the simulated analogue
of the paper's testbed: two hosts joined by one duplex link per model
channel, each shaped to the channel's (l, d, r), with the model's channel
indices carried through so measured and predicted vectors line up.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from repro.core.channel import ChannelSet
from repro.core.schedule import ShareSchedule
from repro.netsim.engine import Engine
from repro.netsim.faults import FaultInjector, FaultPlan
from repro.netsim.host import CpuModel
from repro.netsim.link import DuplexChannel
from repro.netsim.ports import ChannelPort
from repro.netsim.rng import RngRegistry
from repro.protocol.config import ProtocolConfig
from repro.protocol.receiver import ReassemblyBuffer
from repro.protocol.scheduler import (
    DynamicParameterSampler,
    ExplicitScheduler,
    ParameterSampler,
)
from repro.protocol.sender import ShareSender

#: Delivery callback signature: (seq, payload-or-None, one-way delay).
DeliverCallback = Callable[[int, Optional[bytes], float], None]


def _per_channel(value: Union[float, Sequence[float]], n: int, label: str) -> List[float]:
    """Broadcast a scalar (or validate a per-channel sequence) to n values."""
    if isinstance(value, (int, float)):
        return [float(value)] * n
    values = [float(v) for v in value]
    if len(values) != n:
        raise ValueError(f"{label} needs one value per channel ({n}), got {len(values)}")
    return values


class RemicssNode:
    """One endpoint of the ReMICSS protocol.

    A node owns a :class:`~repro.protocol.sender.ShareSender` over its
    outbound ports and a :class:`~repro.protocol.receiver.ReassemblyBuffer`
    fed by its inbound ports.  Sending and receiving are independent, so a
    pair of nodes supports full-duplex traffic (needed by the echo/delay
    experiment).

    Args:
        engine: the simulation engine.
        ports_out: outbound channel ports, in channel-index order.
        ports_in: inbound channel ports, in channel-index order.
        config: protocol tunables.
        rng_registry: named random streams ("<name>.pad" for share
            material, "<name>.sched" for parameter sampling).
        schedule: when given, the node uses an explicit schedule drawn
            from it; otherwise the dynamic (κ, µ) sampler from config.
        sender_cpu: optional finite CPU on the send path.
        receiver_cpu: optional finite CPU on the receive path.
        name: label used for rng stream names and traces.
    """

    def __init__(
        self,
        engine: Engine,
        ports_out: Sequence[ChannelPort],
        ports_in: Sequence[ChannelPort],
        config: ProtocolConfig,
        rng_registry: RngRegistry,
        schedule: Optional[ShareSchedule] = None,
        sender_cpu: Optional[CpuModel] = None,
        receiver_cpu: Optional[CpuModel] = None,
        name: str = "node",
    ):
        self.engine = engine
        self.config = config
        self.name = name
        self.sampler: ParameterSampler
        if schedule is not None:
            self.sampler = ExplicitScheduler(schedule, rng_registry.stream(f"{name}.sched"))
        else:
            self.sampler = DynamicParameterSampler(
                config.kappa, config.mu, rng_registry.stream(f"{name}.sched")
            )
        self.sender = ShareSender(
            engine,
            ports_out,
            self.sampler,
            config,
            rng_registry.stream(f"{name}.pad"),
            cpu=sender_cpu,
        )
        self._deliver_callbacks: List[DeliverCallback] = []
        self.receiver = ReassemblyBuffer(
            engine,
            config.scheme,
            timeout=config.reassembly_timeout,
            limit=config.reassembly_limit,
            on_deliver=self._dispatch_delivery,
            synthetic=config.share_synthetic,
            cpu=receiver_cpu,
            share_cost=config.cpu_share_cost,
            reconstruct_cost_per_k=config.cpu_reconstruct_cost_per_k,
            byzantine_tolerance=config.byzantine_tolerance,
            batch_reconstruct=config.batch_reconstruct,
            # Both directions of a pair derive the same per-flow keys from
            # config.auth's root key, so A's tags verify at B and back.
            authenticator=self.sender.authenticator,
        )
        for port in ports_in:
            port.on_receive(self.receiver.handle_datagram)

    # Application plaintext enters the protocol here (docs/TAINT.md).
    def send(self, payload: Optional[bytes] = None) -> bool:  # taint: source=payload
        """Offer one source symbol; False if dropped at the source queue."""
        return self.sender.offer(payload)

    def on_deliver(self, callback: DeliverCallback) -> None:
        """Register a callback for reconstructed symbols."""
        self._deliver_callbacks.append(callback)

    def _dispatch_delivery(self, seq: int, payload: Optional[bytes], delay: float) -> None:
        for callback in self._deliver_callbacks:
            callback(seq, payload, delay)


class PointToPointNetwork:
    """Two hosts joined by one shaped duplex channel per model channel.

    The link byte rate is ``rate * symbol_size``: a channel rated at r
    symbols per unit time carries exactly r payload-sized datagrams per
    unit time, matching how the paper measures per-channel rate with iperf
    before computing optimal values.  Share packets are slightly larger
    (header overhead), which is part of the protocol's real-world gap from
    optimal.

    Args:
        channels: the model channel set (risk is not used here; loss,
            delay and rate shape the links).
        symbol_size: the protocol's symbol payload size in bytes.
        rng_registry: random streams for per-link loss draws.
        queue_limit: per-link queue capacity in packets.
        jitter: netem-style delay variation, a scalar applied to every
            channel or one value per channel.
        corruption: per-delivery tamper probability (the Byzantine channel
            of the PSMT threat model), scalar or per channel.
    """

    def __init__(
        self,
        channels: ChannelSet,
        symbol_size: int,
        rng_registry: RngRegistry,
        queue_limit: int = 16,
        jitter: Union[float, Sequence[float]] = 0.0,
        corruption: Union[float, Sequence[float]] = 0.0,
    ):
        self.engine = Engine()
        self.channels = channels
        self.symbol_size = symbol_size
        jitters = _per_channel(jitter, channels.n, "jitter")
        corruptions = _per_channel(corruption, channels.n, "corruption")
        self.duplex: List[DuplexChannel] = []
        for i, channel in enumerate(channels):
            self.duplex.append(
                DuplexChannel(
                    self.engine,
                    byte_rate=channel.rate * symbol_size,
                    loss=channel.loss,
                    delay=channel.delay,
                    forward_rng=rng_registry.stream(f"link{i}.fwd.loss"),
                    reverse_rng=rng_registry.stream(f"link{i}.rev.loss"),
                    queue_limit=queue_limit,
                    jitter=jitters[i],
                    corruption=corruptions[i],
                    name=channel.name or f"ch{i}",
                )
            )
        self.fault_injector: Optional[FaultInjector] = None
        #: Armed by :meth:`apply_attack`; typed loosely to avoid importing
        #: the adversary package into every protocol user.
        self.attack_injector = None
        # Host A sends on forward links and receives on reverse links.
        self.ports_a_out = [ChannelPort(i, d.forward) for i, d in enumerate(self.duplex)]
        self.ports_b_in = self.ports_a_out  # same objects: B registers receive callbacks
        self.ports_b_out = [ChannelPort(i, d.reverse) for i, d in enumerate(self.duplex)]
        self.ports_a_in = self.ports_b_out

    def apply_faults(self, plan: FaultPlan) -> FaultInjector:
        """Arm a fault plan against this network's channels.

        Returns the armed :class:`~repro.netsim.faults.FaultInjector`
        (also kept as :attr:`fault_injector`) so callers can inspect its
        log after the run.
        """
        injector = FaultInjector(self.engine, self.duplex, plan)
        injector.arm()
        self.fault_injector = injector
        return injector

    def apply_attack(self, plan, registry: RngRegistry, risks: Optional[Sequence[float]] = None):
        """Arm an active-adversary attack plan against this network.

        ``risks`` defaults to the model channel risks -- exactly the
        ranking the adaptive attacker is assumed to know.  Returns the
        armed :class:`~repro.adversary.active.engine.AttackInjector`
        (also kept as :attr:`attack_injector`).  Imported lazily so the
        protocol layer has no hard dependency on the adversary package.
        """
        from repro.adversary.active.engine import AttackInjector

        if risks is None:
            risks = [channel.risk for channel in self.channels]
        injector = AttackInjector(self.engine, self.duplex, plan, registry, risks=risks)
        injector.arm()
        self.attack_injector = injector
        return injector

    def node_pair(
        self,
        config: ProtocolConfig,
        rng_registry: RngRegistry,
        schedule: Optional[ShareSchedule] = None,
        sender_cpu: Optional[CpuModel] = None,
        receiver_cpu: Optional[CpuModel] = None,
    ) -> "tuple[RemicssNode, RemicssNode]":
        """Build the (A, B) node pair over this network.

        A sends on the forward direction, B on the reverse; the same
        config is applied to both (the experiments only ever need
        symmetric configurations).
        """
        node_a = RemicssNode(
            self.engine,
            ports_out=self.ports_a_out,
            ports_in=self.ports_a_in,
            config=config,
            rng_registry=rng_registry,
            schedule=schedule,
            sender_cpu=sender_cpu,
            receiver_cpu=receiver_cpu,
            name="nodeA",
        )
        node_b = RemicssNode(
            self.engine,
            ports_out=self.ports_b_out,
            ports_in=self.ports_b_in,
            config=config,
            rng_registry=rng_registry,
            schedule=schedule,
            sender_cpu=sender_cpu,
            receiver_cpu=receiver_cpu,
            name="nodeB",
        )
        return node_a, node_b
