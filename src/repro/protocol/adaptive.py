"""Closed-loop parameter adaptation.

The paper's model is deliberately *tunable*: "these parameters can be
chosen and adjusted accordingly" (Sec. III-A).  This module automates the
adjustment: an :class:`AdaptiveController` periodically

1. folds fresh monitoring evidence into per-channel risk estimates
   (the HMM filter of :mod:`repro.adversary.riskassess`);
2. re-estimates per-channel loss from transport feedback with an
   exponentially weighted moving average;
3. rebuilds the channel set and asks the planner
   (:mod:`repro.core.planner`) for the fastest schedule that still meets
   the deployment's requirements;
4. swaps the node's parameter sampler to the new LP-optimal schedule.

In the simulator the "transport feedback" is read from the link statistics
(a stand-in for the loss feedback a deployed protocol would obtain from
receiver reports); the alert feed is any callable returning the epoch's
alert bit per channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Callable, List, Optional, Sequence

from repro.adversary.riskassess import HmmRiskEstimator
from repro.core.channel import ChannelSet
from repro.core.planner import (
    NoFeasiblePlanError,
    Plan,
    Requirements,
    plan_max_rate,
)
from repro.netsim.engine import Engine
from repro.netsim.link import Link
from repro.protocol.remicss import RemicssNode
from repro.protocol.scheduler import ExplicitScheduler


@dataclass
class AdaptationRecord:
    """One controller review, kept for inspection and tests."""

    time: float
    risks: List[float]
    losses: List[float]
    plan: Optional[Plan]
    feasible: bool


class AdaptiveController:
    """Periodically retunes a ReMICSS node to meet stated requirements.

    Args:
        engine: the simulation engine (provides the review timer).
        node: the protocol node whose sampler is swapped on each review.
        base_channels: static channel properties (delay, rate); risk and
            loss are replaced by live estimates at each review.
        links: the node's outbound links, used as the loss-feedback source.
        alert_feed: callable ``(channel_index) -> bool`` returning the
            current epoch's IDS alert for a channel.
        risk_estimators: one HMM filter per channel.
        requirements: bounds the chosen plan must satisfy.
        period: time between reviews.
        loss_smoothing: EWMA weight on the newest loss observation.
        rng: randomness for the swapped-in explicit scheduler.
    """

    def __init__(
        self,
        engine: Engine,
        node: RemicssNode,
        base_channels: ChannelSet,
        links: Sequence[Link],
        alert_feed: Callable[[int], bool],
        risk_estimators: Sequence[HmmRiskEstimator],
        requirements: Requirements,
        period: float,
        loss_smoothing: float = 0.3,
        rng=None,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0.0 < loss_smoothing <= 1.0:
            raise ValueError(f"loss_smoothing must be in (0, 1], got {loss_smoothing}")
        if not len(base_channels) == len(links) == len(risk_estimators):
            raise ValueError("need one link and one risk estimator per channel")
        self.engine = engine
        self.node = node
        self.base_channels = base_channels
        self.links = list(links)
        self.alert_feed = alert_feed
        self.risk_estimators = list(risk_estimators)
        self.requirements = requirements
        self.period = period
        self.loss_smoothing = loss_smoothing
        self.rng = rng if rng is not None else __import__("numpy").random.default_rng(0)
        self.history: List[AdaptationRecord] = []
        self._loss_estimate = [channel.loss for channel in base_channels]
        self._last_serialized = [0] * len(self.links)
        self._last_loss_drops = [0] * len(self.links)
        self._last_down_drops = [0] * len(self.links)
        self._timer = engine.schedule(period, self._review)

    def stop(self) -> None:
        """Cancel future reviews."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    @property
    def current_plan(self) -> Optional[Plan]:
        """The most recent feasible plan, if any."""
        for record in reversed(self.history):
            if record.plan is not None:
                return record.plan
        return None

    # -- the review loop ---------------------------------------------------------

    def _observed_loss(self, index: int) -> Optional[float]:
        """Loss fraction on link ``index`` since the previous review.

        A downed link neither serializes nor loss-drops (sends fail
        *before* the wire, as ``down_drops``), so outages must be folded
        in explicitly or the estimator silently keeps its pre-outage
        estimates and plans over dead channels: send attempts refused by
        a downed link count as attempted-and-lost, and a link that is
        down with no attempts at all (e.g. the sender is stalled on
        readiness) is observed as total loss rather than "no evidence".
        """
        link = self.links[index]
        serialized = link.stats.serialized - self._last_serialized[index]
        drops = link.stats.loss_drops - self._last_loss_drops[index]
        down = link.stats.down_drops - self._last_down_drops[index]
        self._last_serialized[index] = link.stats.serialized
        self._last_loss_drops[index] = link.stats.loss_drops
        self._last_down_drops[index] = link.stats.down_drops
        attempts = serialized + down
        if attempts == 0:
            return 1.0 if not link.up else None
        return (drops + down) / attempts

    def _review(self) -> None:
        # 1. risk: fold in this epoch's alerts.
        risks = [
            estimator.update(self.alert_feed(i))
            for i, estimator in enumerate(self.risk_estimators)
        ]
        # 2. loss: EWMA over observed link loss (unused channels keep
        #    their previous estimate).
        for i in range(len(self.links)):
            observed = self._observed_loss(i)
            if observed is not None:
                self._loss_estimate[i] = (
                    (1.0 - self.loss_smoothing) * self._loss_estimate[i]
                    + self.loss_smoothing * observed
                )
        # Clamp: the model requires loss strictly below 1.
        losses = [min(loss, 0.999) for loss in self._loss_estimate]
        channels = ChannelSet.from_vectors(
            risks=risks,
            losses=losses,
            delays=self.base_channels.delays,
            rates=self.base_channels.rates,
            names=[channel.name for channel in self.base_channels],
        )
        # 3/4. plan and swap the sampler.
        try:
            plan = plan_max_rate(channels, self.requirements)
        except NoFeasiblePlanError:
            self.history.append(
                AdaptationRecord(
                    time=self.engine.now, risks=risks, losses=losses,
                    plan=None, feasible=False,
                )
            )
        else:
            sampler = ExplicitScheduler(plan.schedule, self.rng)
            self.node.sampler = sampler
            self.node.sender.sampler = sampler
            self.history.append(
                AdaptationRecord(
                    time=self.engine.now, risks=risks, losses=losses,
                    plan=plan, feasible=True,
                )
            )
        self._timer = self.engine.schedule(self.period, self._review)
