"""Protocol configuration.

One dataclass gathers every tunable of the reference protocol so
experiments can state their configuration in one place and reports can
print it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.protocol.auth import AuthConfig
from repro.sharing.base import SecretSharingScheme
from repro.sharing.shamir import ShamirScheme


@dataclass
class ProtocolConfig:
    """Tunables of a ReMICSS node.

    Attributes:
        kappa: target average threshold κ (used by the dynamic scheduler).
        mu: target average multiplicity µ (used by the dynamic scheduler).
        symbol_size: source symbol payload size in bytes.  The model's
            "unit rate" of a channel is expressed in symbols of this size.
        scheme: the threshold secret sharing scheme to split symbols with.
        source_queue_limit: how many symbols may wait for channel
            readiness before the source starts dropping (sender-side
            socket-buffer analogue).
        reassembly_timeout: how long the receiver keeps an incomplete
            symbol before evicting it (the IP-fragment-reassembly borrow).
        reassembly_limit: maximum number of in-flight incomplete symbols
            held by the receiver; beyond it the oldest is evicted.
        selector_ordering: "headroom" (default) or "fixed" readiness
            ordering for the dynamic share schedule (see
            :mod:`repro.netsim.readiness`).
        share_synthetic: when True, the sender skips real share payloads
            (sizes only) -- used by pure rate benchmarks to keep the hot
            loop allocation-free.  Reconstruction is then skipped too; the
            receiver counts a symbol as delivered when k shares arrived.
        cpu_split_cost: CPU work units to split one symbol (see
            :class:`repro.netsim.host.CpuModel`); only meaningful when the
            node is given a finite-capacity CPU.
        cpu_share_cost: CPU work units per transmitted or received share.
        cpu_reconstruct_cost_per_k: CPU work units per share actually used
            in reconstruction (so cost grows with k, which is what makes
            large κ fall off sooner in the paper's Figure 7).
        byzantine_tolerance: number of *corrupted* shares per symbol the
            receiver can correct (the PSMT threat model).  When positive,
            the receiver waits for ``k + 2e`` shares and decodes robustly
            (see :mod:`repro.sharing.robust`); requires real Shamir
            payloads and ``⌊µ⌋ >= ⌊κ⌋ + 2e`` so enough shares exist.
        sender_batch_limit: how many queued symbols the sender may split in
            one :meth:`~repro.sharing.base.SecretSharingScheme.split_many`
            call (1 = split per symbol, today's behaviour).  Batching
            amortizes the GF(256) work across symbols and is bit-identical
            to the per-symbol path -- same wire bytes, same stats -- because
            ``split_many`` preserves the exact per-secret rng draw order and
            transmission still checks channel readiness per symbol (see
            docs/FLEET.md; the fleet workload runs with a large batch).
        batch_reconstruct: when True, the receiver coalesces symbols that
            complete at the same simulation instant and reconstructs them
            in one :meth:`~repro.sharing.base.SecretSharingScheme.reconstruct_many`
            call.  Delivery times, order, payloads and stats are identical
            to the per-symbol path (the flush runs at the same timestamp);
            only the Python/GF overhead drops.  Ignored in synthetic,
            Byzantine-robust and finite-CPU modes, which keep per-symbol
            completion semantics.
        auth: when set, every transmitted share carries a keyed MAC
            (:mod:`repro.protocol.auth`) and the receiver verifies before
            reassembly: bad-tag shares are dropped as *erasures*, so with
            ``byzantine_tolerance > 0`` recovery holds with up to
            ``m - k`` corrupted channels instead of ``floor((m-k)/2)``,
            and forgery is detected even at ``k = m``.  Requires real
            share payloads (a tag over a synthetic share authenticates
            nothing).
    """

    kappa: float = 1.0
    mu: float = 1.0
    symbol_size: int = 1250
    scheme: SecretSharingScheme = field(default_factory=ShamirScheme)
    source_queue_limit: int = 64
    reassembly_timeout: float = 5.0
    reassembly_limit: int = 4096
    selector_ordering: str = "headroom"
    share_synthetic: bool = False
    cpu_split_cost: float = 1.0
    cpu_share_cost: float = 1.0
    cpu_reconstruct_cost_per_k: float = 1.0
    byzantine_tolerance: int = 0
    sender_batch_limit: int = 1
    batch_reconstruct: bool = False
    auth: Optional[AuthConfig] = None

    def __post_init__(self) -> None:
        if not 1.0 <= self.kappa <= self.mu:
            raise ValueError(f"need 1 <= κ <= µ, got κ={self.kappa}, µ={self.mu}")
        if self.symbol_size <= 0:
            raise ValueError(f"symbol_size must be positive, got {self.symbol_size}")
        if self.source_queue_limit < 1:
            raise ValueError("source_queue_limit must be at least 1")
        if self.reassembly_timeout <= 0:
            raise ValueError("reassembly_timeout must be positive")
        if self.reassembly_limit < 1:
            raise ValueError("reassembly_limit must be at least 1")
        # The dynamic sampler draws k in {floor(κ), ceil(κ)} and m in
        # {floor(µ), ceil(µ)}; the scheme must accept the extreme pair.
        import math

        k_min, m_max = math.floor(self.kappa), math.ceil(self.mu)
        if not self.scheme.supports(k_min, max(k_min, m_max)):
            raise ValueError(
                f"scheme {self.scheme.name!r} cannot operate at κ={self.kappa}, "
                f"µ={self.mu} (needs support for k={k_min}, m={m_max})"
            )
        if self.sender_batch_limit < 1:
            raise ValueError("sender_batch_limit must be at least 1")
        if self.byzantine_tolerance < 0:
            raise ValueError("byzantine_tolerance must be nonnegative")
        if self.byzantine_tolerance > 0:
            if self.share_synthetic:
                raise ValueError("byzantine tolerance needs real share payloads")
            if self.scheme.name != "shamir-gf256":
                raise ValueError(
                    "robust decoding is implemented for Shamir shares only"
                )
            if self.auth is None and math.floor(self.mu) < k_min + 2 * self.byzantine_tolerance:
                # With auth, verified-bad shares are erasures (cost one
                # unit of redundancy each), so the 2e headroom is not
                # required -- k verified shares reconstruct.
                raise ValueError(
                    f"correcting e={self.byzantine_tolerance} corruptions needs "
                    f"⌊µ⌋ >= ⌊κ⌋ + 2e (got κ={self.kappa}, µ={self.mu})"
                )
        if self.auth is not None and self.share_synthetic:
            raise ValueError("authenticated shares need real share payloads")
