"""The MICSS baseline: perfect sharing over reliable share transport.

MICSS (the authors' earlier protocol, GLOBECOM 2015) differs from ReMICSS
in exactly the two ways Sec. V calls out, both of which this baseline
reproduces:

* it uses a *perfect* (n, n) secret sharing scheme -- XOR pads -- so its
  only reachable configuration is κ = µ = n: every symbol's shares go out
  on every channel, and all of them are needed to reconstruct;
* its share transport is *reliable*: every share is acknowledged, and an
  unacknowledged share is retransmitted on its channel after a
  retransmission timeout.  A single lossy channel therefore stalls the
  whole pipeline (head-of-line blocking), which is the behaviour that
  motivates ReMICSS's best-effort redesign.

The baseline exists for the comparison benchmarks; the paper's figures are
all about ReMICSS, but the MICSS-vs-ReMICSS ablation quantifies what the
redesign buys.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple


from repro.netsim.engine import Engine, Event
from repro.netsim.packet import Datagram
from repro.netsim.ports import ChannelPort
from repro.netsim.rng import RngRegistry
from repro.protocol.wire import HEADER_SIZE, WireFormatError, decode_share, encode_share
from repro.sharing.base import Share
from repro.sharing.xor import XorScheme

#: Size of an acknowledgement datagram in bytes (a minimal header).
ACK_SIZE = 32


@dataclass
class MicssStats:
    """Counters for the MICSS baseline."""

    symbols_offered: int = 0
    source_drops: int = 0
    shares_sent: int = 0
    retransmissions: int = 0
    acks_sent: int = 0
    symbols_delivered: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class _OutstandingShare:
    """A transmitted share awaiting acknowledgement."""

    __slots__ = ("seq", "share", "channel", "timer", "offered_at")

    def __init__(self, seq: int, share: Share, channel: int, offered_at: float):
        self.seq = seq
        self.share = share
        self.channel = channel
        self.timer: Optional[Event] = None
        self.offered_at = offered_at


class MicssNode:
    """One endpoint of the MICSS baseline protocol.

    Args:
        engine: the simulation engine.
        ports_out: outbound ports (shares travel out, ACKs come back in on
            the paired inbound ports).
        ports_in: inbound ports.
        symbol_size: source symbol payload size.
        rng_registry: random streams for the XOR pads.
        source_queue_limit: bound on symbols awaiting transmission.
        window: how many symbols may be in flight (un-acked) at once.
        rto: retransmission timeout; when ``None`` it is derived per
            channel as 4x the channel's (serialisation + propagation)
            round trip plus a small floor.
        name: label for rng streams.
    """

    def __init__(
        self,
        engine: Engine,
        ports_out: Sequence[ChannelPort],
        ports_in: Sequence[ChannelPort],
        symbol_size: int,
        rng_registry: RngRegistry,
        source_queue_limit: int = 64,
        window: int = 32,
        rto: Optional[float] = None,
        name: str = "micss",
    ):
        self.engine = engine
        self.ports_out = list(ports_out)
        self.ports_in = list(ports_in)
        self.symbol_size = symbol_size
        self.scheme = XorScheme()
        self.rng = rng_registry.stream(f"{name}.pad")
        self.source_queue_limit = source_queue_limit
        self.window = window
        self.name = name
        self.stats = MicssStats()
        self._rto = rto
        self._source: Deque[Tuple[int, bytes, float]] = deque()
        self._next_seq = 0
        self._outstanding: Dict[Tuple[int, int], _OutstandingShare] = {}
        self._inflight_symbols: Dict[int, int] = {}  # seq -> un-acked share count
        self._rx_table: Dict[int, Dict[int, Share]] = {}
        self._rx_done: "set[int]" = set()
        self._deliver_callbacks: List[Callable[[int, bytes, float], None]] = []
        for port in self.ports_in:
            port.on_receive(self._handle_datagram)
        for port in self.ports_out:
            port.link.watch_writable(self._pump)

    @property
    def n(self) -> int:
        return len(self.ports_out)

    def on_deliver(self, callback: Callable[[int, bytes, float], None]) -> None:
        """Register a callback ``(seq, payload, delay)`` for delivered symbols."""
        self._deliver_callbacks.append(callback)

    def channel_rto(self, channel: int) -> float:
        """The retransmission timeout used for shares on ``channel``."""
        if self._rto is not None:
            return self._rto
        link = self.ports_out[channel].link
        share_time = (self.symbol_size + HEADER_SIZE) / link.byte_rate
        return 4.0 * (share_time + 2.0 * link.delay) + 16.0 * share_time

    # -- sending ------------------------------------------------------------------

    def send(self, payload: bytes) -> bool:
        """Offer one source symbol; False if the source queue was full."""
        self.stats.symbols_offered += 1
        if len(payload) != self.symbol_size:
            raise ValueError(f"payload must be {self.symbol_size} bytes, got {len(payload)}")
        if len(self._source) >= self.source_queue_limit:
            self.stats.source_drops += 1
            return False
        self._source.append((self._next_seq, payload, self.engine.now))
        self._next_seq += 1
        self._pump()
        return True

    def _pump(self) -> None:
        while self._source:
            if len(self._inflight_symbols) >= self.window:
                return
            # MICSS sends every symbol on every channel; wait until all of
            # them can take a share (reliable transport never sheds load).
            if not all(port.writable() for port in self.ports_out):
                return
            seq, payload, offered_at = self._source.popleft()
            shares = self.scheme.split(payload, self.n, self.n, self.rng)
            self._inflight_symbols[seq] = self.n
            for channel, share in enumerate(shares):
                self._transmit_share(seq, share, channel, offered_at)

    def _transmit_share(self, seq: int, share: Share, channel: int, offered_at: float) -> None:
        key = (seq, share.index)
        outstanding = self._outstanding.get(key)
        if outstanding is None:
            outstanding = _OutstandingShare(seq, share, channel, offered_at)
            self._outstanding[key] = outstanding
        packet = encode_share(seq, share, self.scheme.name)
        datagram = Datagram(
            size=len(packet),
            payload=packet,
            meta={"seq": seq, "index": share.index, "symbol_sent_at": offered_at},
        )
        sent = self.ports_out[channel].send(datagram)
        if sent:
            self.stats.shares_sent += 1
        # Whether queued or tail-dropped, the timer drives the retry loop.
        outstanding.timer = self.engine.schedule(
            self.channel_rto(channel), self._retransmit, key
        )

    def _retransmit(self, key: Tuple[int, int]) -> None:
        outstanding = self._outstanding.get(key)
        if outstanding is None:
            return  # acked in the meantime
        self.stats.retransmissions += 1
        self._transmit_share(
            outstanding.seq, outstanding.share, outstanding.channel, outstanding.offered_at
        )

    # -- receiving ------------------------------------------------------------------

    def _handle_datagram(self, datagram: Datagram) -> None:
        ack = datagram.meta.get("ack")
        if ack is not None:
            self._handle_ack(ack)
            return
        try:
            header, share = decode_share(datagram.payload)
        except WireFormatError:
            return
        # Acknowledge on the reverse direction of the same channel.
        channel = datagram.meta.get("channel", header.index - 1)
        self._send_ack(header.seq, header.index, channel)
        if header.seq in self._rx_done:
            return
        table = self._rx_table.setdefault(header.seq, {})
        table[header.index] = share
        if len(table) == header.m:
            payload = self.scheme.reconstruct(list(table.values()))
            del self._rx_table[header.seq]
            self._rx_done.add(header.seq)
            self.stats.symbols_delivered += 1
            delay = self.engine.now - datagram.meta.get("symbol_sent_at", datagram.sent_at)
            for callback in self._deliver_callbacks:
                callback(header.seq, payload, delay)

    def _send_ack(self, seq: int, index: int, channel: int) -> None:
        ack = Datagram(size=ACK_SIZE, meta={"ack": (seq, index)})
        # ACKs bypass readiness checks: if the reverse queue is full the
        # ACK is simply lost and the share will be retransmitted.
        self.ports_out[channel].send(ack)
        self.stats.acks_sent += 1

    def _handle_ack(self, ack: Tuple[int, int]) -> None:
        key = (ack[0], ack[1])
        outstanding = self._outstanding.pop(key, None)
        if outstanding is None:
            return  # duplicate ACK
        if outstanding.timer is not None:
            outstanding.timer.cancel()
        remaining = self._inflight_symbols.get(outstanding.seq)
        if remaining is not None:
            if remaining <= 1:
                del self._inflight_symbols[outstanding.seq]
                self._pump()
            else:
                self._inflight_symbols[outstanding.seq] = remaining - 1
