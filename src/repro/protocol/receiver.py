"""Receive path: share reassembly with timeout eviction and a memory bound.

Because ReMICSS is best-effort, shares of many symbols are in flight at
once (loss, reordering, and unequal channel rates all interleave them).
The receiver therefore keeps a reassembly table indexed by symbol sequence
number, borrowing two ideas from IP fragment reassembly (Sec. V):

* an incomplete symbol is **evicted after a timeout**, so slow shares get
  time to arrive without the table pinning memory forever;
* the table is **bounded**; when full, the oldest incomplete symbol is
  evicted to make room (new shares are never blocked by old state).

A symbol is delivered the moment any k of its shares have arrived; shares
arriving after that are counted as *late* and dropped.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field

from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.netsim.engine import Engine, Event
from repro.netsim.host import CpuModel
from repro.netsim.packet import Datagram
from repro.protocol.auth import ShareAuthenticator
from repro.protocol.wire import WireFormatError, decode_share
from repro.sharing.base import ReconstructionError, SecretSharingScheme, Share
from repro.sharing.robust import reconstruct_with_erasures, robust_reconstruct

#: How many completed sequence numbers to remember for late-share
#: classification, as a multiple of the reassembly limit.
_COMPLETED_MEMORY_FACTOR = 4

#: Per-flow counter fields tracked inside :class:`ReceiverStats.flows`.
FLOW_RECEIVER_FIELDS = (
    "shares_received", "symbols_delivered", "late_shares",
    "duplicate_shares", "evicted_symbols",
)


@dataclass
class ReceiverStats:
    """Counters kept by the receive path.

    The scalar counters aggregate over every flow (the historical
    behaviour); per-flow blocks under :attr:`flows` exist only for
    *non-default* flows so single-flow runs keep the exact JSON shape
    they had before flows existed.
    """

    shares_received: int = 0
    symbols_delivered: int = 0
    late_shares: int = 0
    duplicate_shares: int = 0
    evicted_symbols: int = 0
    evicted_shares: int = 0
    decode_errors: int = 0
    reconstruction_errors: int = 0
    cpu_rejected_shares: int = 0
    corrupt_shares_detected: int = 0
    #: Duplicate (flow, seq, index) arrivals whose payload disagreed with
    #: the share already held -- the signature of a tampered replay or a
    #: forgery colliding with a live slot.  The first-arrival share is
    #: kept; the mismatching copy is dropped (see docs/ADVERSARY.md).
    replayed_shares_dropped: int = 0
    #: Timeout evictions deferred by the resilience repair hook (a NACK
    #: was sent and the entry granted extra time).
    repair_extensions: int = 0
    #: Symbols delivered only thanks to at least one repair round.
    repair_recovered: int = 0
    #: Shares whose keyed MAC verified (auth armed).  Aggregate-only
    #: counters, like :attr:`replayed_shares_dropped`, so flow blocks keep
    #: their historical shape; per-channel attribution lives on the buffer
    #: (:attr:`ReassemblyBuffer.auth_fail_by_channel`).
    auth_verified_shares: int = 0
    #: Shares dropped before reassembly because their tag failed to verify
    #: (corruption, forgery, or a cross-flow/cross-slot replant).
    auth_failed_shares: int = 0
    #: Shares dropped because auth is armed but the frame carried no tag.
    auth_missing_shares: int = 0
    #: Per-flow counters, keyed by nonzero flow id (see FLOW_RECEIVER_FIELDS).
    flows: Dict[int, Dict[str, int]] = field(default_factory=dict)

    def flow_block(self, flow: int) -> Dict[str, int]:
        """The (created-on-demand) counter block for a nonzero flow."""
        block = self.flows.get(flow)
        if block is None:
            block = {name: 0 for name in FLOW_RECEIVER_FIELDS}
            self.flows[flow] = block
        return block

    def count(self, flow: int, name: str, delta: int = 1) -> None:
        """Bump aggregate counter ``name`` (and its flow block if flow != 0)."""
        setattr(self, name, getattr(self, name) + delta)
        if flow != 0:
            self.flow_block(flow)[name] += delta

    def as_dict(self) -> dict:
        out = dict(self.__dict__)
        if self.flows:
            out["flows"] = {
                str(flow): dict(block) for flow, block in sorted(self.flows.items())
            }
        else:
            del out["flows"]  # single-flow runs keep the historical shape
        return out


class _Entry:
    """Reassembly state for one in-flight symbol."""

    __slots__ = (
        "seq", "k", "m", "shares", "channels", "first_at", "sent_at", "evict_event",
        "repair_rounds", "flow", "erasures", "erasure_channels",
    )

    def __init__(
        self, seq: int, k: int, m: int, first_at: float, sent_at: float, flow: int = 0
    ):
        self.seq = seq
        self.flow = flow
        self.k = k
        self.m = m
        self.shares: Dict[int, Share] = {}
        self.channels: Dict[int, int] = {}  # share index -> arrival channel
        self.first_at = first_at
        self.sent_at = sent_at
        self.evict_event: Optional[Event] = None
        self.repair_rounds = 0  # NACK rounds used (resilience repair path)
        #: Share indices seen only with a failed MAC (auth armed): known-bad
        #: *positions*, fed to erasure decoding; a later verified arrival
        #: for the same index clears the erasure.
        self.erasures: Set[int] = set()
        self.erasure_channels: Dict[int, int] = {}  # erased index -> channel


class ReassemblyBuffer:
    """The receive path of a protocol node.

    Args:
        engine: simulation engine (for the clock and eviction timers).
        scheme: scheme used to reconstruct symbols.
        timeout: eviction timeout for incomplete symbols.
        limit: maximum number of incomplete symbols held.
        on_deliver: callback ``(seq, payload, delay)`` invoked for every
            reconstructed symbol; ``payload`` is ``None`` in synthetic
            mode and ``delay`` is source-to-reconstruction latency.
        synthetic: when True, skip real reconstruction and deliver as soon
            as k share *headers* have arrived (rate-only benchmarks).
        cpu: optional finite CPU; when given, each share pays
            ``share_cost`` and each reconstruction pays
            ``k * reconstruct_cost_per_k`` before completing.
        share_cost: CPU work units per received share.
        reconstruct_cost_per_k: CPU work units per share used in
            reconstruction.
        byzantine_tolerance: corrupted shares to correct per symbol; when
            positive, completion waits for ``min(m, k + 2e)`` shares and
            decodes with :func:`repro.sharing.robust.robust_reconstruct`.
        authenticator: when set, every share's keyed MAC is verified
            *before* reassembly (docs/AUTH.md): bad-tag shares never open
            or fill an entry -- they are counted, attributed per channel,
            and recorded as *erasures* -- and completion needs only k
            verified shares, decoded through
            :func:`repro.sharing.robust.reconstruct_with_erasures` when
            Byzantine tolerance is on.  Recovery then survives up to
            ``m - k`` corrupted channels instead of ``floor((m-k)/2)``.
        batch_reconstruct: when True, symbols completing at the same
            simulation instant are decoded together through
            :meth:`~repro.sharing.base.SecretSharingScheme.reconstruct_many`
            (same timestamp, order, payloads and stats as the per-symbol
            path).  Only effective without a CPU model, synthetic mode or
            Byzantine tolerance.
    """

    def __init__(
        self,
        engine: Engine,
        scheme: SecretSharingScheme,
        timeout: float,
        limit: int,
        on_deliver: Callable[[int, Optional[bytes], float], None],
        synthetic: bool = False,
        cpu: Optional[CpuModel] = None,
        share_cost: float = 1.0,
        reconstruct_cost_per_k: float = 1.0,
        byzantine_tolerance: int = 0,
        batch_reconstruct: bool = False,
        authenticator: Optional[ShareAuthenticator] = None,
    ):
        self.engine = engine
        self.scheme = scheme
        self.timeout = timeout
        self.limit = limit
        self.on_deliver = on_deliver
        self.synthetic = synthetic
        self.cpu = cpu
        self.share_cost = share_cost
        self.reconstruct_cost_per_k = reconstruct_cost_per_k
        self.byzantine_tolerance = byzantine_tolerance
        self.authenticator = authenticator
        self.stats = ReceiverStats()
        self.corrupt_by_channel: Dict[int, int] = {}
        #: MAC-verification failures attributed per arrival channel (the
        #: resilience layer folds deltas into channel suspicion).
        self.auth_fail_by_channel: Dict[int, int] = {}
        #: Most incomplete symbols ever held at once (buffer high-water mark).
        self.max_pending = 0
        #: Optional instruments attached by :mod:`repro.obs.instrument`:
        #: source-to-reconstruction latency and buffer-occupancy histograms
        #: (sim-time; None when observability is off) and a structured
        #: tracer fed one event per timeout eviction.
        self.latency_histogram = None
        self.occupancy_histogram = None
        self.tracer = None
        #: Optional resilience hook ``(entry) -> Optional[float]`` consulted
        #: on timeout eviction: a float return grants the entry that much
        #: extra reassembly time (the hook has NACKed its missing shares);
        #: None lets the eviction proceed.  See docs/RESILIENCE.md.
        self.repair_policy: Optional[Callable[[_Entry], Optional[float]]] = None
        #: Optional flow-aware delivery hook ``(flow, seq, payload, delay)``.
        #: When set it is called INSTEAD of ``on_deliver`` -- the fleet
        #: demultiplexer uses it to route deliveries to per-flow sinks.
        self.on_deliver_flow: Optional[
            Callable[[int, int, Optional[bytes], float], None]
        ] = None
        #: Reassembly state is keyed by (flow, seq): two tenants using the
        #: same sequence number can never share a reassembly group, so
        #: shares are never cross-delivered between flows.
        self._table: "OrderedDict[Tuple[int, int], _Entry]" = OrderedDict()
        #: (flow, seq) pairs known to be closed -- delivered, or evicted
        #: when the table was full.  Shares for them are *late*, not new.
        self._closed: Set[Tuple[int, int]] = set()
        self._closed_order: Deque[Tuple[int, int]] = deque()
        self.batch_reconstruct = (
            batch_reconstruct
            and not synthetic
            and byzantine_tolerance == 0
            and (cpu is None or cpu.capacity is None)
        )
        self._flush_pending: List[_Entry] = []
        self._flush_scheduled = False

    @property
    def pending(self) -> int:
        """Number of incomplete symbols currently held."""
        return len(self._table)

    # -- ingress ---------------------------------------------------------------

    def handle_datagram(self, datagram: Datagram) -> None:
        """Entry point wired to every inbound channel port."""
        if self.cpu is None or self.cpu.capacity is None:
            self._process(datagram)
            return
        accepted = self.cpu.submit(self.share_cost, lambda: self._process(datagram))
        if not accepted:
            self.stats.cpu_rejected_shares += 1

    def _process(self, datagram: Datagram) -> None:
        if self.synthetic:
            meta = datagram.meta
            seq, index, k, m = meta["seq"], meta["index"], meta["k"], meta["m"]
            flow = meta.get("flow", 0)
            share = None
        else:
            try:
                header, share = decode_share(datagram.payload)
            except WireFormatError:
                self.stats.decode_errors += 1
                return
            seq, index, k, m = header.seq, header.index, header.k, header.m
            flow = header.flow
        self.stats.count(flow, "shares_received")

        if self.authenticator is not None and not self.synthetic:
            if not self.authenticator.verify(flow, seq, share, header.scheme_id, header.tag):
                # Verify before reassembly: an unverified share never opens
                # or fills an entry (a forged-header flood must not pin
                # table slots).  If the symbol is already open, the failed
                # index becomes an erasure -- a known-bad position for the
                # decoder -- cleared again if a verified copy arrives.
                if header.tag is None:
                    self.stats.auth_missing_shares += 1
                else:
                    self.stats.auth_failed_shares += 1
                channel = datagram.meta.get("channel")
                if channel is not None:
                    self.auth_fail_by_channel[channel] = (
                        self.auth_fail_by_channel.get(channel, 0) + 1
                    )
                entry = self._table.get((flow, seq))
                if entry is not None and index not in entry.shares:
                    entry.erasures.add(index)
                    if channel is not None:
                        entry.erasure_channels[index] = channel
                return
            self.stats.auth_verified_shares += 1

        key = (flow, seq)
        if key in self._closed:
            self.stats.count(flow, "late_shares")
            return
        entry = self._table.get(key)
        if entry is None:
            entry = self._open_entry(flow, seq, k, m, datagram)
        if index in entry.shares:
            existing = entry.shares[index]
            if share is not None and existing is not None and existing.data != share.data:
                # Same (flow, seq, index) slot, different payload: replay
                # defense drops the newcomer and keeps the original.
                # Aggregate-only counter (not per-flow) so the flow-0 JSON
                # stat shape is preserved.
                self.stats.replayed_shares_dropped += 1
            else:
                self.stats.count(flow, "duplicate_shares")
            return
        # Synthetic mode stores a placeholder; real mode stores the share.
        entry.shares[index] = share
        if index in entry.erasures:
            # A verified copy supersedes the earlier failed one: the
            # position is no longer an erasure.
            entry.erasures.discard(index)
            entry.erasure_channels.pop(index, None)
        channel = datagram.meta.get("channel")
        if channel is not None:
            entry.channels[index] = channel
        if len(entry.shares) >= self._required_shares(entry):
            self._complete(entry)

    def _required_shares(self, entry: _Entry) -> int:
        """Shares needed before reconstruction is attempted.

        Plain operation completes at k; Byzantine-tolerant operation waits
        for 2e extra shares (capped at m, beyond which no more will come).
        With auth armed every stored share is individually verified, so k
        of them suffice -- the erasure-radius payoff: up to m - k corrupted
        channels survived instead of floor((m - k) / 2).
        """
        if self.byzantine_tolerance == 0 or self.synthetic:
            return entry.k
        if self.authenticator is not None:
            return entry.k
        return min(entry.m, entry.k + 2 * self.byzantine_tolerance)

    def _open_entry(self, flow: int, seq: int, k: int, m: int, datagram: Datagram) -> _Entry:
        if len(self._table) >= self.limit:
            # Evict the oldest incomplete symbol to make room.  Unlike a
            # timeout eviction (where a later share is indistinguishable
            # from a new symbol, so the entry may be re-opened), a
            # capacity eviction is a deliberate close: remember the key so
            # stragglers count as late instead of opening a fresh entry
            # that can never complete.
            evicted_key, oldest = self._table.popitem(last=False)
            self._drop_entry(oldest)
            self._remember_closed(evicted_key)
        sent_at = datagram.meta.get("symbol_sent_at", datagram.sent_at)
        entry = _Entry(seq, k, m, first_at=self.engine.now, sent_at=sent_at, flow=flow)
        entry.evict_event = self.engine.schedule(self.timeout, self._evict, (flow, seq))
        self._table[(flow, seq)] = entry
        occupancy = len(self._table)
        if occupancy > self.max_pending:
            self.max_pending = occupancy
        if self.occupancy_histogram is not None:
            self.occupancy_histogram.observe(occupancy)
        return entry

    # -- completion and eviction -------------------------------------------------

    def _complete(self, entry: _Entry) -> None:
        del self._table[(entry.flow, entry.seq)]
        if entry.evict_event is not None:
            entry.evict_event.cancel()
        self._remember_closed((entry.flow, entry.seq))
        if entry.repair_rounds > 0:
            self.stats.repair_recovered += 1

        if self.batch_reconstruct:
            # Coalesce completions at this instant; the flush event fires
            # at the same timestamp, so delivery time and order match the
            # inline path while the GF work batches across symbols.
            self._flush_pending.append(entry)
            if not self._flush_scheduled:
                self._flush_scheduled = True
                self.engine.schedule(0.0, self._flush_batch)
            return

        def finish() -> None:
            if self.synthetic:
                payload: Optional[bytes] = None
            elif self.byzantine_tolerance > 0:
                try:
                    if self.authenticator is not None:
                        # Every stored share carries a verified MAC, so the
                        # failed positions are *erasures*: decode from the
                        # survivors with no residual-error search.
                        result = reconstruct_with_erasures(
                            list(entry.shares.values()), entry.erasures
                        )
                    else:
                        result = robust_reconstruct(list(entry.shares.values()))
                except ReconstructionError:
                    self.stats.reconstruction_errors += 1
                    return
                payload = result.secret
                if result.corrupted:
                    self.stats.corrupt_shares_detected += len(result.corrupted)
                    for index in result.corrupted:
                        channel = entry.channels.get(
                            index, entry.erasure_channels.get(index)
                        )
                        if channel is not None:
                            self.corrupt_by_channel[channel] = (
                                self.corrupt_by_channel.get(channel, 0) + 1
                            )
            else:
                try:
                    payload = self.scheme.reconstruct(list(entry.shares.values()))
                except ReconstructionError:
                    self.stats.reconstruction_errors += 1
                    return
            self._deliver(entry, payload)

        if self.cpu is None or self.cpu.capacity is None:
            finish()
            return
        cost = entry.k * self.reconstruct_cost_per_k
        if not self.cpu.submit(cost, finish):
            # Reconstruction work rejected by a saturated CPU: symbol lost.
            self.stats.cpu_rejected_shares += 1

    def _deliver(self, entry: _Entry, payload: Optional[bytes]) -> None:
        self.stats.count(entry.flow, "symbols_delivered")
        delay = self.engine.now - entry.sent_at if entry.sent_at >= 0 else 0.0
        if self.latency_histogram is not None:
            self.latency_histogram.observe(delay)
        if self.on_deliver_flow is not None:
            self.on_deliver_flow(entry.flow, entry.seq, payload, delay)
        else:
            self.on_deliver(entry.seq, payload, delay)

    def _flush_batch(self) -> None:
        """Reconstruct every completion coalesced at this instant.

        ``reconstruct_many`` buckets the groups by geometry internally and
        returns exactly what per-group ``reconstruct`` calls would, so the
        delivered payloads are bit-identical to the inline path.  A group
        that cannot reconstruct falls back to the per-symbol error
        accounting without poisoning its batch.
        """
        batch = self._flush_pending
        self._flush_pending = []
        self._flush_scheduled = False
        groups = [list(entry.shares.values()) for entry in batch]
        try:
            payloads = self.scheme.reconstruct_many(groups)
        except ReconstructionError:
            payloads = []
            for group in groups:
                try:
                    payloads.append(self.scheme.reconstruct(group))
                except ReconstructionError:
                    payloads.append(None)
        for entry, payload in zip(batch, payloads):
            if payload is None:
                self.stats.reconstruction_errors += 1
                continue
            self._deliver(entry, payload)

    def _remember_closed(self, key: Tuple[int, int]) -> None:
        self._closed.add(key)
        self._closed_order.append(key)
        max_remembered = self.limit * _COMPLETED_MEMORY_FACTOR
        while len(self._closed_order) > max_remembered:
            self._closed.discard(self._closed_order.popleft())

    def _evict(self, key: Tuple[int, int]) -> None:
        entry = self._table.get(key)
        if entry is None:
            return
        if self.repair_policy is not None:
            extension = self.repair_policy(entry)
            if extension is not None:
                # The repair hook NACKed the missing shares; keep the
                # entry alive long enough for the retransmission.
                self.stats.repair_extensions += 1
                entry.evict_event = self.engine.schedule(extension, self._evict, key)
                return
        del self._table[key]
        if self.tracer is not None:
            self.tracer.event(
                "reassembly_evict", seq=entry.seq, shares=len(entry.shares), k=entry.k
            )
        self._drop_entry(entry, cancel_timer=False)

    def _drop_entry(self, entry: _Entry, cancel_timer: bool = True) -> None:
        if cancel_timer and entry.evict_event is not None:
            entry.evict_event.cancel()
        self.stats.count(entry.flow, "evicted_symbols")
        self.stats.evicted_shares += len(entry.shares)
