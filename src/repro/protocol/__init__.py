"""The ReMICSS reference protocol and the MICSS baseline (Sec. V).

ReMICSS is the paper's best-effort, transport-agnostic multichannel secret
sharing protocol.  The pipeline for one source symbol is:

1. the **scheduler** picks the per-symbol parameters -- either integer
   (k, m) sampled so the long-run averages are exactly (κ, µ) (the
   *dynamic* schedule, which then lets channel readiness pick M), or a
   full (k, M) pair drawn from an explicit LP-optimal
   :class:`~repro.core.schedule.ShareSchedule`;
2. the **sender** waits until m channels can accept a share, splits the
   symbol with the secret sharing scheme, and transmits one share per
   chosen channel inside a :mod:`~repro.protocol.wire` header;
3. the **receiver** collects shares in a reassembly buffer (with timeout
   eviction and a memory bound, borrowed from IP fragment reassembly) and
   reconstructs as soon as any k shares of a symbol have arrived.

:mod:`repro.protocol.micss` implements the MICSS baseline: XOR perfect
sharing (κ = µ = n is its only configuration) over *reliable* share
transport with acknowledgement and retransmission -- the design whose
inflexibility motivates ReMICSS.

:mod:`repro.protocol.dibs` is the transparent interception shim standing in
for the DIBS bump-in-the-stack architecture the real implementation uses.
"""

from repro.protocol.adaptive import AdaptationRecord, AdaptiveController
from repro.protocol.config import ProtocolConfig
from repro.protocol.dibs import DibsInterceptor
from repro.protocol.micss import MicssNode
from repro.protocol.receiver import ReassemblyBuffer, ReceiverStats
from repro.protocol.remicss import PointToPointNetwork, RemicssNode
from repro.protocol.scheduler import (
    DynamicParameterSampler,
    ExplicitScheduler,
    ParameterSampler,
)
from repro.protocol.sender import SenderStats, ShareSender
from repro.protocol.wire import HEADER_SIZE, ShareHeader, decode_share, encode_share

__all__ = [
    "ProtocolConfig",
    "RemicssNode",
    "PointToPointNetwork",
    "AdaptiveController",
    "AdaptationRecord",
    "MicssNode",
    "DibsInterceptor",
    "ShareSender",
    "SenderStats",
    "ReassemblyBuffer",
    "ReceiverStats",
    "ParameterSampler",
    "DynamicParameterSampler",
    "ExplicitScheduler",
    "ShareHeader",
    "encode_share",
    "decode_share",
    "HEADER_SIZE",
]
