"""Per-symbol parameter selection (the share schedule, operationally).

Two strategies, matching the paper's Sec. V discussion:

* :class:`DynamicParameterSampler` -- ReMICSS's approach: only the integer
  pair (k, m) is decided per symbol (sampled so the averages are exactly
  κ and µ, via the Theorem-5 atom mixture); *which* m channels carry the
  shares is left to write-readiness at send time ("the first m channels
  ready for writing").
* :class:`ExplicitScheduler` -- the model-faithful alternative: draw the
  full (k, M) pair from an explicit :class:`~repro.core.schedule.ShareSchedule`
  (typically an LP-optimal one).  Used for ablations comparing the dynamic
  simplification against the optimum it approximates.
"""

from __future__ import annotations

import abc
from typing import FrozenSet, List, Optional, Tuple

import numpy as np

from repro.core.program import fractional_atoms
from repro.core.schedule import ShareSchedule


class ParameterSampler(abc.ABC):
    """Per-symbol source of protocol parameters."""

    @abc.abstractmethod
    def sample(self) -> Tuple[int, int, Optional[FrozenSet[int]]]:
        """Return ``(k, m, M)`` for the next symbol.

        ``M`` is ``None`` for dynamic scheduling (the sender will pick the
        first m ready channels); otherwise it is the exact channel subset
        to use, with ``|M| == m``.
        """


class DynamicParameterSampler(ParameterSampler):
    """Sample integer (k, m) with exact long-run averages (κ, µ).

    Uses the :func:`repro.core.program.fractional_atoms` mixture: at most
    four integer atoms whose expectation is exactly (κ, µ), every atom
    satisfying ``k <= m``.  Deterministic when κ and µ are both integers.
    """

    def __init__(self, kappa: float, mu: float, rng: np.random.Generator):
        self.kappa = kappa
        self.mu = mu
        self.rng = rng
        atoms = fractional_atoms(kappa, mu)
        self._pairs: List[Tuple[int, int]] = [pair for pair, _ in atoms]
        self._probs = np.array([p for _, p in atoms])
        self._probs = self._probs / self._probs.sum()

    def sample(self) -> Tuple[int, int, Optional[FrozenSet[int]]]:
        if len(self._pairs) == 1:
            k, m = self._pairs[0]
        else:
            k, m = self._pairs[int(self.rng.choice(len(self._pairs), p=self._probs))]
        return k, m, None


class ExplicitScheduler(ParameterSampler):
    """Draw full (k, M) pairs from an explicit share schedule."""

    def __init__(self, schedule: ShareSchedule, rng: np.random.Generator):
        self.schedule = schedule
        self.rng = rng
        self._pairs = [pair for pair, _ in schedule.support()]
        self._probs = np.array([p for _, p in schedule.support()])
        self._probs = self._probs / self._probs.sum()

    def sample(self) -> Tuple[int, int, Optional[FrozenSet[int]]]:
        if len(self._pairs) == 1:
            k, members = self._pairs[0]
        else:
            k, members = self._pairs[int(self.rng.choice(len(self._pairs), p=self._probs))]
        return k, len(members), members
