"""Transparent interception shim (the DIBS stand-in).

The real ReMICSS implementation inserts itself below the transport layer
using the DIBS "bump in the stack" architecture, so *any* IP traffic can be
carried without application changes.  In the simulator the equivalent role
is a framing adapter: arbitrary-length application datagrams are segmented
into fixed-size protocol symbols on the way in and reassembled on the way
out, so applications never see the symbol size.

Frame format inside the symbol stream: each application datagram becomes
``[4-byte length][data]``, the concatenated stream is cut into symbol-size
chunks, and the final chunk is zero-padded (a length of zero marks padding,
which the reader skips).
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional

from repro.protocol.remicss import RemicssNode

_LENGTH = struct.Struct(">I")


class DibsInterceptor:
    """Carries arbitrary application datagrams over a ReMICSS node.

    Args:
        node: the protocol node to send through.
        on_datagram: callback invoked with each reassembled application
            datagram on the receive side.

    Notes:
        Delivery is sensitive to symbol loss and reordering: symbols are
        re-sequenced by their protocol sequence number, and a gap flushes
        the partially accumulated datagram (a best-effort IP-like drop).
    """

    def __init__(
        self,
        node: RemicssNode,
        on_datagram: Optional[Callable[[bytes], None]] = None,
    ):
        self.node = node
        self.symbol_size = node.config.symbol_size
        self._callbacks: List[Callable[[bytes], None]] = []
        if on_datagram is not None:
            self._callbacks.append(on_datagram)
        self._outbuf = b""
        self._expected_seq: Optional[int] = None
        self._stash: Dict[int, bytes] = {}
        self._inbuf = b""
        self.datagrams_sent = 0
        self.datagrams_delivered = 0
        self.datagrams_corrupted = 0
        node.on_deliver(self._on_symbol)

    def on_datagram(self, callback: Callable[[bytes], None]) -> None:
        """Register a receive callback for reassembled datagrams."""
        self._callbacks.append(callback)

    # -- intercept (send side) ---------------------------------------------------

    def intercept(self, datagram: bytes) -> None:
        """Accept one application datagram and push full symbols out."""
        self.datagrams_sent += 1
        self._outbuf += _LENGTH.pack(len(datagram)) + datagram
        while len(self._outbuf) >= self.symbol_size:
            symbol, self._outbuf = (
                self._outbuf[: self.symbol_size],
                self._outbuf[self.symbol_size :],
            )
            self.node.send(symbol)

    def flush(self) -> None:
        """Zero-pad and send any buffered partial symbol."""
        if self._outbuf:
            symbol = self._outbuf.ljust(self.symbol_size, b"\0")
            self._outbuf = b""
            self.node.send(symbol)

    # -- reinject (receive side) ----------------------------------------------------

    def _on_symbol(self, seq: int, payload: Optional[bytes], delay: float) -> None:
        del delay
        if payload is None:
            return  # synthetic mode carries no data to reassemble
        if self._expected_seq is None:
            self._expected_seq = seq
        if seq != self._expected_seq:
            self._stash[seq] = payload
            # A badly out-of-window symbol means the gap will never fill;
            # drop the partial datagram and resync.
            if len(self._stash) > 64:
                self._resync()
            return
        self._consume(payload)
        self._expected_seq += 1
        while self._expected_seq in self._stash:
            self._consume(self._stash.pop(self._expected_seq))
            self._expected_seq += 1

    def _resync(self) -> None:
        self.datagrams_corrupted += 1
        self._inbuf = b""
        self._expected_seq = min(self._stash)
        while self._expected_seq in self._stash:
            self._consume(self._stash.pop(self._expected_seq))
            self._expected_seq += 1

    def _consume(self, symbol: bytes) -> None:
        self._inbuf += symbol
        while True:
            if len(self._inbuf) < _LENGTH.size:
                return
            (length,) = _LENGTH.unpack_from(self._inbuf)
            if length == 0:
                # Padding: the rest of this buffer is flush fill.
                self._inbuf = b""
                return
            end = _LENGTH.size + length
            if len(self._inbuf) < end:
                return
            datagram = self._inbuf[_LENGTH.size : end]
            self._inbuf = self._inbuf[end:]
            self.datagrams_delivered += 1
            for callback in self._callbacks:
                callback(datagram)
