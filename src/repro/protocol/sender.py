"""Send path: source queue, parameter sampling, share transmission.

The sender is a FIFO pipeline.  Source symbols wait in a bounded queue
(the socket-buffer analogue; overflow drops are how an over-offered sender
sheds load, exactly like iperf's UDP client).  For the symbol at the head:

1. parameters are sampled once (and stick while the symbol waits);
2. the sender waits until the required channels can accept a share --
   for the *dynamic* schedule, any m writable channels (the paper's
   "first m channels ready for writing" via epoll); for an *explicit*
   schedule, precisely the channels of the drawn subset M;
3. the symbol is split and one share is transmitted per chosen channel.

An optional finite CPU serialises the per-symbol work (split cost plus a
per-share cost), which is what caps throughput in the paper's Figures 6-7
once channel capacity outgrows the end system.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, FrozenSet, List, Optional, Sequence

import numpy as np

from repro.netsim.engine import Engine
from repro.netsim.host import CpuModel
from repro.netsim.packet import Datagram
from repro.netsim.ports import ChannelPort
from repro.netsim.readiness import WriteSelector
from repro.protocol.config import ProtocolConfig
from repro.protocol.scheduler import ParameterSampler
from repro.protocol.wire import HEADER_SIZE, encode_share
from repro.sharing.base import Share


@dataclass
class SenderStats:
    """Counters kept by the send path."""

    symbols_offered: int = 0
    symbols_sent: int = 0
    source_drops: int = 0
    shares_sent: int = 0
    share_send_failures: int = 0
    #: Times the head symbol found fewer ready channels than it needed and
    #: had to wait for a writable notification (scheduler back-pressure).
    readiness_stalls: int = 0
    #: Symbols refused while admission was paused (the resilience layer's
    #: DEGRADED mode: no feasible schedule survives, so rather than leak
    #: under a weaker threshold the sender sheds load at the source).
    admission_paused_drops: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class _PendingSymbol:
    """A source symbol waiting in the sender's queue."""

    __slots__ = ("seq", "payload", "offered_at", "k", "m", "subset")

    def __init__(self, seq: int, payload: Optional[bytes], offered_at: float):
        self.seq = seq
        self.payload = payload
        self.offered_at = offered_at
        self.k: Optional[int] = None
        self.m: Optional[int] = None
        self.subset: Optional[FrozenSet[int]] = None


class ShareSender:
    """The send path of a protocol node.

    Args:
        engine: simulation engine.
        ports: outbound channel ports, in channel-index order.
        sampler: per-symbol parameter source (dynamic or explicit).
        config: protocol configuration.
        rng: random stream for share material.
        cpu: optional finite CPU serialising per-symbol work.
    """

    def __init__(
        self,
        engine: Engine,
        ports: Sequence[ChannelPort],
        sampler: ParameterSampler,
        config: ProtocolConfig,
        rng: np.random.Generator,
        cpu: Optional[CpuModel] = None,
    ):
        self.engine = engine
        self.ports = list(ports)
        self.sampler = sampler
        self.config = config
        self.rng = rng
        self.cpu = cpu
        self.selector = WriteSelector(self.ports, config.selector_ordering)
        self.stats = SenderStats()
        self.shares_per_channel = [0] * len(self.ports)
        #: (k, m) -> times the sampler picked that pair (schedule mix audit).
        self.schedule_picks: "dict[tuple[int, int], int]" = {}
        #: Structured tracer attached by :mod:`repro.obs.instrument`; when
        #: set, every transmitted symbol emits a ``share_tx`` span.
        self.tracer = None
        #: When True (the resilience layer's DEGRADED mode), offered
        #: symbols are refused at the source queue instead of being sent
        #: under an infeasible schedule.
        self.admission_paused = False
        #: Optional hook ``(seq, k, m, offered_at, shares)`` called after
        #: every transmitted symbol; the resilience layer uses it to fill
        #: the repair buffer.
        self.on_transmit = None
        self._source: Deque[_PendingSymbol] = deque()
        self._next_seq = 0
        self._cpu_busy = False
        for port in self.ports:
            port.link.watch_writable(self._pump)

    @property
    def backlog(self) -> int:
        """Symbols waiting in the source queue."""
        return len(self._source)

    # -- ingress ----------------------------------------------------------------

    def offer(self, payload: Optional[bytes] = None) -> bool:
        """Offer one source symbol to the protocol.

        ``payload`` may be ``None`` in synthetic mode (rate benchmarks);
        otherwise it must be exactly ``config.symbol_size`` bytes.

        Returns:
            False if the source queue was full and the symbol was dropped.
        """
        self.stats.symbols_offered += 1
        if payload is not None and len(payload) != self.config.symbol_size:
            raise ValueError(
                f"payload must be {self.config.symbol_size} bytes, got {len(payload)}"
            )
        if payload is None and not self.config.share_synthetic:
            raise ValueError("payload required unless share_synthetic is enabled")
        if self.admission_paused:
            self.stats.admission_paused_drops += 1
            return False
        if len(self._source) >= self.config.source_queue_limit:
            self.stats.source_drops += 1
            return False
        symbol = _PendingSymbol(self._next_seq, payload, self.engine.now)
        self._next_seq += 1
        self._source.append(symbol)
        self._pump()
        return True

    def resample_head(self) -> None:
        """Drop the head symbol's sticky parameters and re-pump.

        Sampled parameters normally stick while a symbol waits.  After a
        failover swaps the sampler, the head may be waiting on a subset
        containing a quarantined channel (a head-of-line stall that would
        only clear when the dead channel recovers); re-sampling under the
        new schedule lets it proceed over the survivors.
        """
        if self._source:
            head = self._source[0]
            head.k = head.m = None
            head.subset = None
        self._pump()

    # -- the pipeline -------------------------------------------------------------

    def _pump(self) -> None:
        """Advance the head symbol if its channels are ready (and CPU free)."""
        if self._cpu_busy:
            return
        while self._source:
            symbol = self._source[0]
            if symbol.k is None:
                symbol.k, symbol.m, symbol.subset = self.sampler.sample()
                pair = (symbol.k, symbol.m)
                self.schedule_picks[pair] = self.schedule_picks.get(pair, 0) + 1
            chosen = self._choose_ports(symbol)
            if chosen is None:
                self.stats.readiness_stalls += 1
                return  # blocked; a writable notification will re-pump
            if self.cpu is None or self.cpu.capacity is None:
                self._source.popleft()
                self._transmit(symbol, chosen)
                continue
            # Finite CPU: serialise one symbol at a time through it.  The
            # chosen ports stay valid because nothing else fills them
            # while this sender is the only writer.
            self._source.popleft()
            self._cpu_busy = True
            cost = self.config.cpu_split_cost + symbol.m * self.config.cpu_share_cost

            def finish(sym: _PendingSymbol = symbol, ports: List[ChannelPort] = chosen) -> None:
                self._transmit(sym, ports)
                self._cpu_busy = False
                self._pump()

            self.cpu.submit(cost, finish)
            return

    def _choose_ports(self, symbol: _PendingSymbol) -> Optional[List[ChannelPort]]:
        """The ports to use for this symbol, or None if not all are ready."""
        if symbol.subset is None:
            chosen = self.selector.select(symbol.m)
            return chosen or None
        members = sorted(symbol.subset)
        ports = [self.ports[i] for i in members]
        if all(port.writable() for port in ports):
            return ports
        return None

    def _transmit(self, symbol: _PendingSymbol, chosen: List[ChannelPort]) -> None:
        if self.tracer is not None:
            self.tracer.event(
                "share_tx",
                seq=symbol.seq,
                k=symbol.k,
                m=symbol.m,
                channels=[port.index for port in chosen],
            )
        size = self.config.symbol_size + HEADER_SIZE
        meta_base = {"seq": symbol.seq, "k": symbol.k, "m": symbol.m}
        if self.config.share_synthetic:
            shares: List[Optional[Share]] = [None] * symbol.m
        else:
            shares = list(
                self.config.scheme.split(symbol.payload, symbol.k, symbol.m, self.rng)
            )
        for position, port in enumerate(chosen):
            index = position + 1
            meta = {
                **meta_base,
                "index": index,
                "symbol_sent_at": symbol.offered_at,
                "channel": port.index,
            }
            if shares[position] is None:
                datagram = Datagram(size=size, meta=meta)
            else:
                packet = encode_share(symbol.seq, shares[position], self.config.scheme.name)
                datagram = Datagram(size=len(packet), payload=packet, meta=meta)
            if port.send(datagram):
                self.stats.shares_sent += 1
                self.shares_per_channel[port.index] += 1
            else:  # pragma: no cover - ports were checked writable
                self.stats.share_send_failures += 1
        self.stats.symbols_sent += 1
        if self.on_transmit is not None:
            self.on_transmit(symbol.seq, symbol.k, symbol.m, symbol.offered_at, shares)
