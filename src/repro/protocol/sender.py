"""Send path: source queue, parameter sampling, share transmission.

The sender is a FIFO pipeline.  Source symbols wait in a bounded queue
(the socket-buffer analogue; overflow drops are how an over-offered sender
sheds load, exactly like iperf's UDP client).  For the symbol at the head:

1. parameters are sampled once (and stick while the symbol waits);
2. the sender waits until the required channels can accept a share --
   for the *dynamic* schedule, any m writable channels (the paper's
   "first m channels ready for writing" via epoll); for an *explicit*
   schedule, precisely the channels of the drawn subset M;
3. the symbol is split and one share is transmitted per chosen channel.

An optional finite CPU serialises the per-symbol work (split cost plus a
per-share cost), which is what caps throughput in the paper's Figures 6-7
once channel capacity outgrows the end system.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, List, Optional, Sequence

import numpy as np

from repro.netsim.engine import Engine
from repro.netsim.host import CpuModel
from repro.netsim.packet import Datagram
from repro.netsim.ports import ChannelPort
from repro.netsim.readiness import WriteSelector
from repro.protocol.auth import ShareAuthenticator
from repro.protocol.config import ProtocolConfig
from repro.protocol.scheduler import ParameterSampler
from repro.protocol.wire import SCHEME_IDS, encode_share, share_packet_size
from repro.sharing.base import Share

#: Per-flow counter fields tracked inside :class:`SenderStats.flows`.
FLOW_SENDER_FIELDS = ("symbols_offered", "symbols_sent", "source_drops", "shares_sent")


@dataclass
class SenderStats:
    """Counters kept by the send path.

    The scalar counters aggregate over every flow, exactly as before flows
    existed.  Multi-flow senders additionally keep a per-flow block under
    :attr:`flows` -- but only for *non-default* flows, so a single-flow run
    (everything on flow 0) serialises to exactly the historical JSON shape.
    """

    symbols_offered: int = 0
    symbols_sent: int = 0
    source_drops: int = 0
    shares_sent: int = 0
    share_send_failures: int = 0
    #: Times the head symbol found fewer ready channels than it needed and
    #: had to wait for a writable notification (scheduler back-pressure).
    readiness_stalls: int = 0
    #: Symbols refused while admission was paused (the resilience layer's
    #: DEGRADED mode: no feasible schedule survives, so rather than leak
    #: under a weaker threshold the sender sheds load at the source).
    admission_paused_drops: int = 0
    #: Shares transmitted with a keyed MAC attached (aggregate only --
    #: auth is all-or-nothing per node, so a per-flow split adds nothing).
    auth_tagged_shares: int = 0
    #: Per-flow counters, keyed by nonzero flow id (see FLOW_SENDER_FIELDS).
    flows: Dict[int, Dict[str, int]] = field(default_factory=dict)

    def flow_block(self, flow: int) -> Dict[str, int]:
        """The (created-on-demand) counter block for a nonzero flow."""
        block = self.flows.get(flow)
        if block is None:
            block = {name: 0 for name in FLOW_SENDER_FIELDS}
            self.flows[flow] = block
        return block

    def count(self, flow: int, name: str, delta: int = 1) -> None:
        """Bump aggregate counter ``name`` (and its flow block if flow != 0)."""
        setattr(self, name, getattr(self, name) + delta)
        if flow != 0:
            self.flow_block(flow)[name] += delta

    def as_dict(self) -> dict:
        out = dict(self.__dict__)
        if self.flows:
            # JSON object keys are strings; sort for stable serialisation.
            out["flows"] = {
                str(flow): dict(block) for flow, block in sorted(self.flows.items())
            }
        else:
            del out["flows"]  # single-flow runs keep the historical shape
        return out


class _PendingSymbol:
    """A source symbol waiting in the sender's queue."""

    __slots__ = ("seq", "payload", "offered_at", "k", "m", "subset", "flow", "shares")

    def __init__(self, seq: int, payload: Optional[bytes], offered_at: float, flow: int = 0):
        self.seq = seq
        self.payload = payload
        self.offered_at = offered_at
        self.flow = flow
        self.k: Optional[int] = None
        self.m: Optional[int] = None
        self.subset: Optional[FrozenSet[int]] = None
        #: Shares prefetched by the batch split path (None = not split yet).
        self.shares: Optional[List[Optional[Share]]] = None

    def __repr__(self) -> str:
        # The queued plaintext must not leak through logs or debugger
        # output; describe it instead of dumping it (docs/TAINT.md).
        from repro.redact import redact_bytes

        return (
            f"_PendingSymbol(seq={self.seq}, flow={self.flow}, "
            f"payload={redact_bytes(self.payload)}, k={self.k}, m={self.m})"
        )


class ShareSender:
    """The send path of a protocol node.

    Args:
        engine: simulation engine.
        ports: outbound channel ports, in channel-index order.
        sampler: per-symbol parameter source (dynamic or explicit).
        config: protocol configuration.
        rng: random stream for share material.
        cpu: optional finite CPU serialising per-symbol work.
    """

    def __init__(
        self,
        engine: Engine,
        ports: Sequence[ChannelPort],
        sampler: ParameterSampler,
        config: ProtocolConfig,
        rng: np.random.Generator,
        cpu: Optional[CpuModel] = None,
    ):
        self.engine = engine
        self.ports = list(ports)
        self.sampler = sampler
        self.config = config
        self.rng = rng
        self.cpu = cpu
        self.selector = WriteSelector(self.ports, config.selector_ordering)
        #: Tags outbound shares when ``config.auth`` is set (the resilience
        #: layer reuses it to re-tag repair retransmissions).
        self.authenticator: Optional[ShareAuthenticator] = (
            ShareAuthenticator(config.auth) if config.auth is not None else None
        )
        self.stats = SenderStats()
        self.shares_per_channel = [0] * len(self.ports)
        #: (k, m) -> times the sampler picked that pair (schedule mix audit).
        self.schedule_picks: "dict[tuple[int, int], int]" = {}
        #: Structured tracer attached by :mod:`repro.obs.instrument`; when
        #: set, every transmitted symbol emits a ``share_tx`` span.
        self.tracer = None
        #: When True (the resilience layer's DEGRADED mode), offered
        #: symbols are refused at the source queue instead of being sent
        #: under an infeasible schedule.
        self.admission_paused = False
        #: Optional hook ``(flow, seq, k, m, offered_at, shares)`` called
        #: after every transmitted symbol; the resilience layer uses it to
        #: fill the repair buffer.
        self.on_transmit = None
        #: Per-flow parameter samplers for multiplexed (fleet) traffic;
        #: flows without an entry use the node-level :attr:`sampler`.
        self.flow_samplers: Dict[int, ParameterSampler] = {}
        self._source: Deque[_PendingSymbol] = deque()
        self._next_seq = 0  # flow 0 (kept as a plain int for compatibility)
        self._flow_seqs: Dict[int, int] = {}
        self._cpu_busy = False
        for port in self.ports:
            port.link.watch_writable(self._pump)

    @property
    def backlog(self) -> int:
        """Symbols waiting in the source queue."""
        return len(self._source)

    # -- ingress ----------------------------------------------------------------

    def set_flow_sampler(self, flow: int, sampler: ParameterSampler) -> None:
        """Register a per-flow parameter sampler (fleet multiplexing).

        Symbols offered on ``flow`` sample their (k, m) from this sampler
        instead of the node-level one, so tenants with different (κ, µ)
        requirements can share one sender.
        """
        if flow == 0:
            self.sampler = sampler
        else:
            self.flow_samplers[flow] = sampler

    def _sampler_for(self, flow: int) -> ParameterSampler:
        return self.flow_samplers.get(flow, self.sampler)

    def offer(self, payload: Optional[bytes] = None, flow: int = 0) -> bool:
        """Offer one source symbol to the protocol.

        ``payload`` may be ``None`` in synthetic mode (rate benchmarks);
        otherwise it must be exactly ``config.symbol_size`` bytes.
        ``flow`` tags the symbol with a stream id (0 = the default
        single-flow stream); sequence numbers count per flow.

        Returns:
            False if the source queue was full and the symbol was dropped.
        """
        self.stats.count(flow, "symbols_offered")
        if payload is not None and len(payload) != self.config.symbol_size:
            raise ValueError(
                f"payload must be {self.config.symbol_size} bytes, got {len(payload)}"
            )
        if payload is None and not self.config.share_synthetic:
            raise ValueError("payload required unless share_synthetic is enabled")
        if self.admission_paused:
            self.stats.admission_paused_drops += 1
            return False
        if len(self._source) >= self.config.source_queue_limit:
            self.stats.count(flow, "source_drops")
            return False
        symbol = _PendingSymbol(self._take_seq(flow), payload, self.engine.now, flow)
        self._source.append(symbol)
        self._pump()
        return True

    def _take_seq(self, flow: int) -> int:
        if flow == 0:
            seq = self._next_seq
            self._next_seq += 1
            return seq
        seq = self._flow_seqs.get(flow, 0)
        self._flow_seqs[flow] = seq + 1
        return seq

    def resample_head(self) -> None:
        """Drop queued symbols' sticky parameters and re-pump.

        Sampled parameters normally stick while a symbol waits.  After a
        failover swaps the sampler, the head may be waiting on a subset
        containing a quarantined channel (a head-of-line stall that would
        only clear when the dead channel recovers); re-sampling under the
        new schedule lets it proceed over the survivors.  Prefetched
        batch state is discarded along with the parameters: anything not
        yet transmitted re-samples (and re-splits) under the new schedule,
        matching what the per-symbol path would have done.
        """
        for queued in self._source:
            queued.k = queued.m = None
            queued.subset = None
            queued.shares = None
        self._pump()

    # -- the pipeline -------------------------------------------------------------

    def _pump(self) -> None:
        """Advance the head symbol if its channels are ready (and CPU free)."""
        if self._cpu_busy:
            return
        while self._source:
            symbol = self._source[0]
            if symbol.k is None:
                self._sample(symbol)
            chosen = self._choose_ports(symbol)
            if chosen is None:
                self.stats.readiness_stalls += 1
                return  # blocked; a writable notification will re-pump
            if self.cpu is None or self.cpu.capacity is None:
                self._source.popleft()
                self._transmit(symbol, chosen)
                continue
            # Finite CPU: serialise one symbol at a time through it.  The
            # chosen ports stay valid because nothing else fills them
            # while this sender is the only writer.
            self._source.popleft()
            self._cpu_busy = True
            cost = self.config.cpu_split_cost + symbol.m * self.config.cpu_share_cost

            def finish(sym: _PendingSymbol = symbol, ports: List[ChannelPort] = chosen) -> None:
                self._transmit(sym, ports)
                self._cpu_busy = False
                self._pump()

            self.cpu.submit(cost, finish)
            return

    def _sample(self, symbol: _PendingSymbol) -> None:
        """Draw and record (k, m, M) for one queued symbol."""
        symbol.k, symbol.m, symbol.subset = self._sampler_for(symbol.flow).sample()
        pair = (symbol.k, symbol.m)
        self.schedule_picks[pair] = self.schedule_picks.get(pair, 0) + 1

    def _ensure_shares(self, symbol: _PendingSymbol) -> List[Optional[Share]]:
        """The symbol's shares, splitting (a batch) on first use.

        With ``sender_batch_limit > 1``, the head symbol's split is
        amortized: queued symbols that sample the same (k, m) are split in
        the same :meth:`split_many` call and carry their shares until they
        transmit.  ``split_many`` draws the per-secret randomness in queue
        order, and parameter sampling uses a separate named stream, so the
        emitted wire bytes are bit-identical to the per-symbol path.
        Transmission (and therefore channel readiness, drops and ordering)
        stays strictly per symbol.
        """
        if symbol.shares is not None:
            return symbol.shares
        batch = [symbol]
        limit = self.config.sender_batch_limit
        if limit > 1:
            for queued in self._source:
                if len(batch) >= limit:
                    break
                if queued.shares is not None or queued.payload is None:
                    break
                if queued.k is None:
                    self._sample(queued)
                if (queued.k, queued.m) != (symbol.k, symbol.m):
                    break
                batch.append(queued)
        groups = self.config.scheme.split_many(
            [member.payload for member in batch], symbol.k, symbol.m, self.rng
        )
        for member, group in zip(batch, groups):
            member.shares = list(group)
        return symbol.shares

    def _choose_ports(self, symbol: _PendingSymbol) -> Optional[List[ChannelPort]]:
        """The ports to use for this symbol, or None if not all are ready."""
        if symbol.subset is None:
            chosen = self.selector.select(symbol.m)
            return chosen or None
        members = sorted(symbol.subset)
        ports = [self.ports[i] for i in members]
        if all(port.writable() for port in ports):
            return ports
        return None

    def _transmit(self, symbol: _PendingSymbol, chosen: List[ChannelPort]) -> None:
        if self.tracer is not None:
            self.tracer.event(
                "share_tx",
                seq=symbol.seq,
                k=symbol.k,
                m=symbol.m,
                channels=[port.index for port in chosen],
            )
        flow = symbol.flow
        size = share_packet_size(
            self.config.symbol_size, flow, authenticated=self.authenticator is not None
        )
        meta_base = {"seq": symbol.seq, "k": symbol.k, "m": symbol.m}
        if flow != 0:
            meta_base["flow"] = flow
        if self.config.share_synthetic:
            shares: List[Optional[Share]] = [None] * symbol.m
        else:
            shares = self._ensure_shares(symbol)
        for position, port in enumerate(chosen):
            index = position + 1
            meta = {
                **meta_base,
                "index": index,
                "symbol_sent_at": symbol.offered_at,
                "channel": port.index,
            }
            if shares[position] is None:
                datagram = Datagram(size=size, meta=meta)
            else:
                tag = None
                if self.authenticator is not None:
                    tag = self.authenticator.tag(
                        flow, symbol.seq, shares[position],
                        SCHEME_IDS[self.config.scheme.name],
                    )
                    self.stats.auth_tagged_shares += 1
                packet = encode_share(
                    symbol.seq, shares[position], self.config.scheme.name,
                    flow=flow, tag=tag,
                )
                datagram = Datagram(size=len(packet), payload=packet, meta=meta)
            if port.send(datagram):
                self.stats.count(flow, "shares_sent")
                self.shares_per_channel[port.index] += 1
            else:  # pragma: no cover - ports were checked writable
                self.stats.share_send_failures += 1
        self.stats.count(flow, "symbols_sent")
        if self.on_transmit is not None:
            self.on_transmit(flow, symbol.seq, symbol.k, symbol.m, symbol.offered_at, shares)
