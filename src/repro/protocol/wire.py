"""Wire format for share packets and resilience control messages.

Each share travels in a fixed 16-byte header followed by the share payload.
The header carries everything the receiver's reassembly buffer needs to
group shares (symbol sequence number), decide completeness (k), and pick
the reconstruction routine (scheme id, share index):

======  ====  =====================================================
offset  size  field
======  ====  =====================================================
0       2     magic (0x5253, "RS")
2       1     version (currently 1)
3       1     scheme id (1 = shamir-gf256, 2 = xor-perfect, 3 = blakley)
4       8     symbol sequence number (big-endian)
12      1     share index (1..m)
13      1     threshold k
14      1     multiplicity m
15      1     flags (reserved, zero)
======  ====  =====================================================

The 16-byte header over a 1250-byte symbol is the protocol's intrinsic
~1.3% rate overhead; together with scheduling slack it accounts for the
"within 3-4% of optimal" gap the paper reports.

The resilience layer (:mod:`repro.protocol.resilience`) adds small
*control* packets under a distinct magic (0x5243, "RC") so they can never
be confused with share traffic:

* ``PROBE``/``PROBE_ACK`` -- liveness probes that gate reinstatement of a
  quarantined channel (``>HBBBQ``: magic, version, type, channel, nonce).
* ``NACK`` -- the receiver's bounded repair request for a symbol that hit
  timeout eviction with ``1 <= received < k`` shares (``>HBBQBBB`` plus
  one byte per already-held share index).

Control packets carry share *indices*, never share material, so an
eavesdropper on fewer than k channels learns nothing new from them (see
docs/RESILIENCE.md for the privacy argument).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.sharing.base import Share

#: Total header size in bytes.
HEADER_SIZE = 16

_MAGIC = 0x5253
_VERSION = 1
_STRUCT = struct.Struct(">HBBQBBBB")

#: Magic for resilience control packets (0x5243, "RC").
CONTROL_MAGIC = 0x5243
#: Control message types.
CTRL_PROBE = 1
CTRL_PROBE_ACK = 2
CTRL_NACK = 3
_CTRL_PROBE_STRUCT = struct.Struct(">HBBBQ")
_CTRL_NACK_STRUCT = struct.Struct(">HBBQBBB")

#: Scheme ids carried on the wire.  Ramp schemes occupy ids 16 + L so the
#: receiver can recover the block parameter from the id alone.
SCHEME_IDS = {"shamir-gf256": 1, "xor-perfect": 2, "blakley-gfp": 3}
SCHEME_IDS.update({f"ramp-gf256-L{L}": 16 + L for L in range(2, 17)})
SCHEME_NAMES = {v: k for k, v in SCHEME_IDS.items()}


class WireFormatError(Exception):
    """Raised when an incoming packet cannot be parsed as a share."""


@dataclass(frozen=True)
class ShareHeader:
    """Decoded header of a share packet."""

    scheme_id: int
    seq: int
    index: int
    k: int
    m: int

    @property
    def scheme_name(self) -> str:
        return SCHEME_NAMES.get(self.scheme_id, f"unknown({self.scheme_id})")


def encode_share(seq: int, share: Share, scheme_name: str) -> bytes:
    """Serialise a share of symbol ``seq`` into a wire packet.

    Raises:
        ValueError: for out-of-range fields or unknown scheme names.
    """
    if scheme_name not in SCHEME_IDS:
        raise ValueError(f"unknown scheme {scheme_name!r}")
    if not 0 <= seq < 2**64:
        raise ValueError(f"sequence number out of range: {seq}")
    if not 1 <= share.index <= 255 or not 1 <= share.k <= 255 or not 1 <= share.m <= 255:
        raise ValueError(
            f"header fields out of range: index={share.index}, k={share.k}, m={share.m}"
        )
    header = _STRUCT.pack(
        _MAGIC, _VERSION, SCHEME_IDS[scheme_name], seq, share.index, share.k, share.m, 0
    )
    return header + share.data


def decode_share(packet: bytes) -> Tuple[ShareHeader, Share]:
    """Parse a wire packet back into its header and share.

    Raises:
        WireFormatError: for truncated packets, bad magic, or unsupported
            versions.
    """
    if len(packet) < HEADER_SIZE:
        raise WireFormatError(f"packet of {len(packet)} bytes is shorter than the header")
    magic, version, scheme_id, seq, index, k, m, _flags = _STRUCT.unpack_from(packet)
    if magic != _MAGIC:
        raise WireFormatError(f"bad magic 0x{magic:04x}")
    if version != _VERSION:
        raise WireFormatError(f"unsupported version {version}")
    header = ShareHeader(scheme_id=scheme_id, seq=seq, index=index, k=k, m=m)
    try:
        share = Share(index=index, data=packet[HEADER_SIZE:], k=k, m=m)
    except ValueError as exc:
        raise WireFormatError(str(exc)) from exc
    return header, share


# -- resilience control messages ---------------------------------------------------


@dataclass(frozen=True)
class ControlMessage:
    """A decoded resilience control packet.

    Attributes:
        kind: one of :data:`CTRL_PROBE`, :data:`CTRL_PROBE_ACK`,
            :data:`CTRL_NACK`.
        channel: probed channel index (probe kinds; 0 for NACK).
        nonce: probe sequence number, echoed by the ack (probe kinds).
        seq: symbol sequence number (NACK only).
        k: symbol threshold (NACK only).
        m: symbol multiplicity (NACK only).
        have: share indices the receiver already holds (NACK only).
    """

    kind: int
    channel: int = 0
    nonce: int = 0
    seq: int = 0
    k: int = 0
    m: int = 0
    have: Tuple[int, ...] = ()


def encode_probe(channel: int, nonce: int) -> bytes:
    """Serialise a liveness probe for ``channel``."""
    return _encode_probe_kind(CTRL_PROBE, channel, nonce)


def encode_probe_ack(channel: int, nonce: int) -> bytes:
    """Serialise the acknowledgement echoing probe ``nonce``."""
    return _encode_probe_kind(CTRL_PROBE_ACK, channel, nonce)


def _encode_probe_kind(kind: int, channel: int, nonce: int) -> bytes:
    if not 0 <= channel <= 255:
        raise ValueError(f"channel out of range: {channel}")
    if not 0 <= nonce < 2**64:
        raise ValueError(f"nonce out of range: {nonce}")
    return _CTRL_PROBE_STRUCT.pack(CONTROL_MAGIC, _VERSION, kind, channel, nonce)


def encode_nack(seq: int, k: int, m: int, have: Iterable[int]) -> bytes:
    """Serialise a repair NACK for symbol ``seq``.

    ``have`` lists the share indices the receiver already holds; the
    sender retransmits from the complement.  Indices only -- a NACK never
    carries share material.
    """
    if not 0 <= seq < 2**64:
        raise ValueError(f"sequence number out of range: {seq}")
    if not 1 <= k <= 255 or not 1 <= m <= 255:
        raise ValueError(f"header fields out of range: k={k}, m={m}")
    indices = sorted(set(have))
    if any(not 1 <= index <= m for index in indices):
        raise ValueError(f"share indices out of range 1..{m}: {indices}")
    if not 1 <= len(indices) < k:
        raise ValueError(
            f"a NACK needs 1 <= held shares < k, got {len(indices)} with k={k}"
        )
    header = _CTRL_NACK_STRUCT.pack(CONTROL_MAGIC, _VERSION, CTRL_NACK, seq, k, m, len(indices))
    return header + bytes(indices)


def is_control(packet: bytes) -> bool:
    """Whether ``packet`` starts with the control magic."""
    return len(packet) >= 2 and int.from_bytes(packet[:2], "big") == CONTROL_MAGIC


def decode_control(packet: bytes) -> ControlMessage:
    """Parse a control packet.

    Raises:
        WireFormatError: for truncated packets, bad magic, unsupported
            versions, unknown control types, or inconsistent NACK fields.
    """
    if len(packet) < 4:
        raise WireFormatError(f"control packet of {len(packet)} bytes is too short")
    magic, version, kind = struct.unpack_from(">HBB", packet)
    if magic != CONTROL_MAGIC:
        raise WireFormatError(f"bad control magic 0x{magic:04x}")
    if version != _VERSION:
        raise WireFormatError(f"unsupported version {version}")
    if kind in (CTRL_PROBE, CTRL_PROBE_ACK):
        if len(packet) < _CTRL_PROBE_STRUCT.size:
            raise WireFormatError(f"truncated probe packet of {len(packet)} bytes")
        _, _, _, channel, nonce = _CTRL_PROBE_STRUCT.unpack_from(packet)
        return ControlMessage(kind=kind, channel=channel, nonce=nonce)
    if kind == CTRL_NACK:
        if len(packet) < _CTRL_NACK_STRUCT.size:
            raise WireFormatError(f"truncated NACK packet of {len(packet)} bytes")
        _, _, _, seq, k, m, count = _CTRL_NACK_STRUCT.unpack_from(packet)
        body = packet[_CTRL_NACK_STRUCT.size:]
        if len(body) < count:
            raise WireFormatError(f"NACK lists {count} indices but carries {len(body)}")
        have = tuple(body[:count])
        if any(not 1 <= index <= m for index in have):
            raise WireFormatError(f"NACK share indices out of range 1..{m}: {have}")
        return ControlMessage(kind=kind, seq=seq, k=k, m=m, have=have)
    raise WireFormatError(f"unknown control type {kind}")
