"""Wire format for share packets.

Each share travels in a fixed 16-byte header followed by the share payload.
The header carries everything the receiver's reassembly buffer needs to
group shares (symbol sequence number), decide completeness (k), and pick
the reconstruction routine (scheme id, share index):

======  ====  =====================================================
offset  size  field
======  ====  =====================================================
0       2     magic (0x5253, "RS")
2       1     version (currently 1)
3       1     scheme id (1 = shamir-gf256, 2 = xor-perfect, 3 = blakley)
4       8     symbol sequence number (big-endian)
12      1     share index (1..m)
13      1     threshold k
14      1     multiplicity m
15      1     flags (reserved, zero)
======  ====  =====================================================

The 16-byte header over a 1250-byte symbol is the protocol's intrinsic
~1.3% rate overhead; together with scheduling slack it accounts for the
"within 3-4% of optimal" gap the paper reports.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from repro.sharing.base import Share

#: Total header size in bytes.
HEADER_SIZE = 16

_MAGIC = 0x5253
_VERSION = 1
_STRUCT = struct.Struct(">HBBQBBBB")

#: Scheme ids carried on the wire.  Ramp schemes occupy ids 16 + L so the
#: receiver can recover the block parameter from the id alone.
SCHEME_IDS = {"shamir-gf256": 1, "xor-perfect": 2, "blakley-gfp": 3}
SCHEME_IDS.update({f"ramp-gf256-L{L}": 16 + L for L in range(2, 17)})
SCHEME_NAMES = {v: k for k, v in SCHEME_IDS.items()}


class WireFormatError(Exception):
    """Raised when an incoming packet cannot be parsed as a share."""


@dataclass(frozen=True)
class ShareHeader:
    """Decoded header of a share packet."""

    scheme_id: int
    seq: int
    index: int
    k: int
    m: int

    @property
    def scheme_name(self) -> str:
        return SCHEME_NAMES.get(self.scheme_id, f"unknown({self.scheme_id})")


def encode_share(seq: int, share: Share, scheme_name: str) -> bytes:
    """Serialise a share of symbol ``seq`` into a wire packet.

    Raises:
        ValueError: for out-of-range fields or unknown scheme names.
    """
    if scheme_name not in SCHEME_IDS:
        raise ValueError(f"unknown scheme {scheme_name!r}")
    if not 0 <= seq < 2**64:
        raise ValueError(f"sequence number out of range: {seq}")
    if not 1 <= share.index <= 255 or not 1 <= share.k <= 255 or not 1 <= share.m <= 255:
        raise ValueError(
            f"header fields out of range: index={share.index}, k={share.k}, m={share.m}"
        )
    header = _STRUCT.pack(
        _MAGIC, _VERSION, SCHEME_IDS[scheme_name], seq, share.index, share.k, share.m, 0
    )
    return header + share.data


def decode_share(packet: bytes) -> Tuple[ShareHeader, Share]:
    """Parse a wire packet back into its header and share.

    Raises:
        WireFormatError: for truncated packets, bad magic, or unsupported
            versions.
    """
    if len(packet) < HEADER_SIZE:
        raise WireFormatError(f"packet of {len(packet)} bytes is shorter than the header")
    magic, version, scheme_id, seq, index, k, m, _flags = _STRUCT.unpack_from(packet)
    if magic != _MAGIC:
        raise WireFormatError(f"bad magic 0x{magic:04x}")
    if version != _VERSION:
        raise WireFormatError(f"unsupported version {version}")
    header = ShareHeader(scheme_id=scheme_id, seq=seq, index=index, k=k, m=m)
    try:
        share = Share(index=index, data=packet[HEADER_SIZE:], k=k, m=m)
    except ValueError as exc:
        raise WireFormatError(str(exc)) from exc
    return header, share
