"""Wire format for share packets and resilience control messages.

Each share travels in a fixed 16-byte header followed by the share payload.
The header carries everything the receiver's reassembly buffer needs to
group shares (symbol sequence number), decide completeness (k), and pick
the reconstruction routine (scheme id, share index):

======  ====  =====================================================
offset  size  field
======  ====  =====================================================
0       2     magic (0x5253, "RS")
2       1     version (currently 1)
3       1     scheme id (1 = shamir-gf256, 2 = xor-perfect, 3 = blakley)
4       8     symbol sequence number (big-endian)
12      1     share index (1..m)
13      1     threshold k
14      1     multiplicity m
15      1     flags (reserved, zero)
======  ====  =====================================================

The 16-byte header over a 1250-byte symbol is the protocol's intrinsic
~1.3% rate overhead; together with scheduling slack it accounts for the
"within 3-4% of optimal" gap the paper reports.

**Flows (version 2).**  The fleet workload multiplexes many independent
secret streams ("flows", one per tenant stream) over the same channels,
so shares of different flows must never be mixed in one reassembly group.
A share of a non-default flow is carried in a *version 2* packet: the
``FLAG_FLOW`` bit is set in the flags byte and a 4-byte big-endian flow id
follows the fixed header (header total 20 bytes).  Flow 0 is the default
single-flow stream and is always encoded as a version 1 packet --
byte-identical to what pre-flow senders emitted -- so single-flow captures,
goldens and stats keep their exact shape.  Decoding is version-tolerant:
version 1 packets mean flow 0, version 2 packets without ``FLAG_FLOW``
also mean flow 0, and unknown flag bits in version 2 are ignored rather
than rejected (a version 2 parser skips extensions it knows the length
of; it never guesses at unknown ones, which is why new extensions must
bump the version).

**Authentication (version 3).**  An authenticated share carries a keyed
MAC over the header fields and the share body (BLAKE2b in keyed mode,
truncated to :data:`TAG_SIZE` bytes -- see :mod:`repro.protocol.auth`).
The ``FLAG_AUTH`` bit is set in the flags byte and the tag follows the
flow extension (or the fixed header when there is none).  Extension
order is fixed: flow id first, tag second.  Unauthenticated frames are
encoded exactly as before -- flow 0 stays version 1 and nonzero flows
stay version 2, byte-identical to pre-auth senders -- so goldens and
captures keep their exact shape; only tagged frames bump to version 3.
Decoding stays version-tolerant: a version 3 packet without
``FLAG_AUTH`` simply has no tag, and unknown flag bits in version 3 are
ignored just as in version 2.

The resilience layer (:mod:`repro.protocol.resilience`) adds small
*control* packets under a distinct magic (0x5243, "RC") so they can never
be confused with share traffic:

* ``PROBE``/``PROBE_ACK`` -- liveness probes that gate reinstatement of a
  quarantined channel (``>HBBBQ``: magic, version, type, channel, nonce).
* ``NACK`` -- the receiver's bounded repair request for a symbol that hit
  timeout eviction with ``1 <= received < k`` shares (``>HBBQBBB`` plus
  one byte per already-held share index).

Control packets carry share *indices*, never share material, so an
eavesdropper on fewer than k channels learns nothing new from them (see
docs/RESILIENCE.md for the privacy argument).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.sharing.base import Share

#: Total header size in bytes (version 1 / flow 0).
HEADER_SIZE = 16
#: Header size of a version 2 packet carrying the flow extension.
FLOW_HEADER_SIZE = 20

_MAGIC = 0x5253
#: Public alias of the share-packet magic (0x5253, "RS") for tooling that
#: classifies raw packets (e.g. the active-adversary primitives).
SHARE_MAGIC = _MAGIC
_VERSION = 1
_VERSION_FLOW = 2
_VERSION_AUTH = 3
#: Flags bit: a 4-byte big-endian flow id follows the fixed header.
FLAG_FLOW = 0x01
#: Flags bit (version 3): a :data:`TAG_SIZE`-byte keyed MAC follows the
#: flow extension (or the fixed header when there is none).
FLAG_AUTH = 0x02
#: Bytes of truncated keyed-BLAKE2b tag carried by an authenticated
#: frame (see :mod:`repro.protocol.auth` for the tag construction).
TAG_SIZE = 16
_STRUCT = struct.Struct(">HBBQBBBB")
_FLOW_STRUCT = struct.Struct(">I")
#: Largest flow id the 4-byte extension can carry.
MAX_FLOW = 2**32 - 1

#: Magic for resilience control packets (0x5243, "RC").
CONTROL_MAGIC = 0x5243
#: Control message types.
CTRL_PROBE = 1
CTRL_PROBE_ACK = 2
CTRL_NACK = 3
_CTRL_PROBE_STRUCT = struct.Struct(">HBBBQ")
_CTRL_NACK_STRUCT = struct.Struct(">HBBQBBB")
#: Version 2 NACK: the flow id sits between the type and the sequence
#: number so flow-aware repair never answers one tenant's NACK with
#: another tenant's shares.  Flow-0 NACKs stay version 1 (byte-identical
#: to pre-flow senders).
_CTRL_NACK_V2_STRUCT = struct.Struct(">HBBIQBBB")

#: Scheme ids carried on the wire.  Ramp schemes occupy ids 16 + L so the
#: receiver can recover the block parameter from the id alone.
SCHEME_IDS = {"shamir-gf256": 1, "xor-perfect": 2, "blakley-gfp": 3}
SCHEME_IDS.update({f"ramp-gf256-L{L}": 16 + L for L in range(2, 17)})
SCHEME_NAMES = {v: k for k, v in SCHEME_IDS.items()}


class WireFormatError(Exception):
    """Raised when an incoming packet cannot be parsed as a share."""


@dataclass(frozen=True)
class ShareHeader:
    """Decoded header of a share packet."""

    scheme_id: int
    seq: int
    index: int
    k: int
    m: int
    #: Flow id the share belongs to (0 = the default single-flow stream).
    flow: int = 0
    #: Keyed MAC carried by a version 3 authenticated frame; ``None`` for
    #: unauthenticated frames.  The tag is public wire material (it is
    #: *verified* against the share, never used to derive anything).
    tag: Optional[bytes] = None

    @property
    def scheme_name(self) -> str:
        return SCHEME_NAMES.get(self.scheme_id, f"unknown({self.scheme_id})")


def share_packet_size(payload_size: int, flow: int = 0, authenticated: bool = False) -> int:
    """Total wire size of a share packet for a ``payload_size``-byte share."""
    size = payload_size + (HEADER_SIZE if flow == 0 else FLOW_HEADER_SIZE)
    return size + TAG_SIZE if authenticated else size


def encode_share(
    seq: int, share: Share, scheme_name: str, flow: int = 0,
    tag: Optional[bytes] = None,
) -> bytes:
    """Serialise a share of symbol ``seq`` into a wire packet.

    ``flow`` 0 (the default) emits a version 1 packet, byte-identical to
    pre-flow encodings; a nonzero flow emits a version 2 packet with the
    flow extension.  A ``tag`` (a :data:`TAG_SIZE`-byte keyed MAC, see
    :mod:`repro.protocol.auth`) bumps the frame to version 3 with
    ``FLAG_AUTH`` set; untagged frames are byte-identical to pre-auth
    encodings.

    Raises:
        ValueError: for out-of-range fields or unknown scheme names.
    """
    if scheme_name not in SCHEME_IDS:
        raise ValueError(f"unknown scheme {scheme_name!r}")
    if not 0 <= seq < 2**64:
        raise ValueError(f"sequence number out of range: {seq}")
    if not 0 <= flow <= MAX_FLOW:
        raise ValueError(f"flow id out of range: {flow}")
    if not 1 <= share.index <= 255 or not 1 <= share.k <= 255 or not 1 <= share.m <= 255:
        raise ValueError(
            f"header fields out of range: index={share.index}, k={share.k}, m={share.m}"
        )
    if tag is not None and len(tag) != TAG_SIZE:
        raise ValueError(f"tag must be {TAG_SIZE} bytes, got {len(tag)}")
    if tag is not None:
        flags = FLAG_AUTH | (FLAG_FLOW if flow != 0 else 0)
        header = _STRUCT.pack(
            _MAGIC, _VERSION_AUTH, SCHEME_IDS[scheme_name], seq,
            share.index, share.k, share.m, flags,
        )
        extension = _FLOW_STRUCT.pack(flow) if flow != 0 else b""
        return header + extension + tag + share.data
    if flow == 0:
        header = _STRUCT.pack(
            _MAGIC, _VERSION, SCHEME_IDS[scheme_name], seq, share.index, share.k, share.m, 0
        )
        return header + share.data
    header = _STRUCT.pack(
        _MAGIC, _VERSION_FLOW, SCHEME_IDS[scheme_name], seq,
        share.index, share.k, share.m, FLAG_FLOW,
    )
    return header + _FLOW_STRUCT.pack(flow) + share.data


def decode_share(packet: bytes) -> Tuple[ShareHeader, Share]:
    """Parse a wire packet back into its header and share.

    Version 1 packets decode as flow 0; version 2 packets carry the flow
    in the ``FLAG_FLOW`` extension (absent extension means flow 0, and
    unknown flag bits are ignored).  Version 3 packets may additionally
    carry a :data:`TAG_SIZE`-byte MAC in the ``FLAG_AUTH`` extension
    (flow first, tag second); ``FLAG_AUTH`` without enough bytes for the
    tag is a truncation error.

    Raises:
        WireFormatError: for truncated packets, bad magic, or unsupported
            versions.
    """
    if len(packet) < HEADER_SIZE:
        raise WireFormatError(f"packet of {len(packet)} bytes is shorter than the header")
    try:
        magic, version, scheme_id, seq, index, k, m, flags = _STRUCT.unpack_from(packet)
    except struct.error as exc:  # belt and braces: adversarial bytes never
        raise WireFormatError(str(exc)) from exc  # escape as struct.error
    if magic != _MAGIC:
        raise WireFormatError(f"bad magic 0x{magic:04x}")
    if version not in (_VERSION, _VERSION_FLOW, _VERSION_AUTH):
        raise WireFormatError(f"unsupported version {version}")
    flow = 0
    offset = HEADER_SIZE
    if version >= _VERSION_FLOW and flags & FLAG_FLOW:
        if len(packet) < FLOW_HEADER_SIZE:
            raise WireFormatError(
                f"packet of {len(packet)} bytes is shorter than the flow header"
            )
        try:
            (flow,) = _FLOW_STRUCT.unpack_from(packet, HEADER_SIZE)
        except struct.error as exc:
            raise WireFormatError(str(exc)) from exc
        offset = FLOW_HEADER_SIZE
    tag = None
    if version >= _VERSION_AUTH and flags & FLAG_AUTH:
        if len(packet) < offset + TAG_SIZE:
            raise WireFormatError(
                f"FLAG_AUTH set but packet of {len(packet)} bytes cannot carry "
                f"a {TAG_SIZE}-byte tag at offset {offset}"
            )
        tag = packet[offset:offset + TAG_SIZE]
        offset += TAG_SIZE
    header = ShareHeader(
        scheme_id=scheme_id, seq=seq, index=index, k=k, m=m, flow=flow, tag=tag
    )
    try:
        share = Share(index=index, data=packet[offset:], k=k, m=m)
    except ValueError as exc:
        raise WireFormatError(str(exc)) from exc
    return header, share


# -- resilience control messages ---------------------------------------------------


@dataclass(frozen=True)
class ControlMessage:
    """A decoded resilience control packet.

    Attributes:
        kind: one of :data:`CTRL_PROBE`, :data:`CTRL_PROBE_ACK`,
            :data:`CTRL_NACK`.
        channel: probed channel index (probe kinds; 0 for NACK).
        nonce: probe sequence number, echoed by the ack (probe kinds).
        seq: symbol sequence number (NACK only).
        k: symbol threshold (NACK only).
        m: symbol multiplicity (NACK only).
        have: share indices the receiver already holds (NACK only).
        flow: flow the NACKed symbol belongs to (NACK only; 0 = default).
    """

    kind: int
    channel: int = 0
    nonce: int = 0
    seq: int = 0
    k: int = 0
    m: int = 0
    have: Tuple[int, ...] = ()
    flow: int = 0


def encode_probe(channel: int, nonce: int) -> bytes:
    """Serialise a liveness probe for ``channel``."""
    return _encode_probe_kind(CTRL_PROBE, channel, nonce)


def encode_probe_ack(channel: int, nonce: int) -> bytes:
    """Serialise the acknowledgement echoing probe ``nonce``."""
    return _encode_probe_kind(CTRL_PROBE_ACK, channel, nonce)


def _encode_probe_kind(kind: int, channel: int, nonce: int) -> bytes:
    if not 0 <= channel <= 255:
        raise ValueError(f"channel out of range: {channel}")
    if not 0 <= nonce < 2**64:
        raise ValueError(f"nonce out of range: {nonce}")
    return _CTRL_PROBE_STRUCT.pack(CONTROL_MAGIC, _VERSION, kind, channel, nonce)


def encode_nack(seq: int, k: int, m: int, have: Iterable[int], flow: int = 0) -> bytes:
    """Serialise a repair NACK for symbol ``seq`` of ``flow``.

    ``have`` lists the share indices the receiver already holds; the
    sender retransmits from the complement.  Indices only -- a NACK never
    carries share material.  Flow 0 emits the version 1 encoding
    (byte-identical to pre-flow NACKs); nonzero flows use version 2.
    """
    if not 0 <= seq < 2**64:
        raise ValueError(f"sequence number out of range: {seq}")
    if not 0 <= flow <= MAX_FLOW:
        raise ValueError(f"flow id out of range: {flow}")
    if not 1 <= k <= 255 or not 1 <= m <= 255:
        raise ValueError(f"header fields out of range: k={k}, m={m}")
    indices = sorted(set(have))
    if any(not 1 <= index <= m for index in indices):
        raise ValueError(f"share indices out of range 1..{m}: {indices}")
    if not 1 <= len(indices) < k:
        raise ValueError(
            f"a NACK needs 1 <= held shares < k, got {len(indices)} with k={k}"
        )
    if flow == 0:
        header = _CTRL_NACK_STRUCT.pack(
            CONTROL_MAGIC, _VERSION, CTRL_NACK, seq, k, m, len(indices)
        )
    else:
        header = _CTRL_NACK_V2_STRUCT.pack(
            CONTROL_MAGIC, _VERSION_FLOW, CTRL_NACK, flow, seq, k, m, len(indices)
        )
    return header + bytes(indices)


def is_control(packet: bytes) -> bool:
    """Whether ``packet`` starts with the control magic."""
    return len(packet) >= 2 and int.from_bytes(packet[:2], "big") == CONTROL_MAGIC


def decode_control(packet: bytes) -> ControlMessage:
    """Parse a control packet.

    Raises:
        WireFormatError: for truncated packets, bad magic, unsupported
            versions, unknown control types, or inconsistent NACK fields.
    """
    if len(packet) < 4:
        raise WireFormatError(f"control packet of {len(packet)} bytes is too short")
    try:
        magic, version, kind = struct.unpack_from(">HBB", packet)
    except struct.error as exc:
        raise WireFormatError(str(exc)) from exc
    if magic != CONTROL_MAGIC:
        raise WireFormatError(f"bad control magic 0x{magic:04x}")
    if version not in (_VERSION, _VERSION_FLOW):
        raise WireFormatError(f"unsupported version {version}")
    if kind in (CTRL_PROBE, CTRL_PROBE_ACK):
        # Probes are flow-agnostic (they test a channel, not a stream), so
        # both versions share the version 1 layout.
        if len(packet) < _CTRL_PROBE_STRUCT.size:
            raise WireFormatError(f"truncated probe packet of {len(packet)} bytes")
        try:
            _, _, _, channel, nonce = _CTRL_PROBE_STRUCT.unpack_from(packet)
        except struct.error as exc:
            raise WireFormatError(str(exc)) from exc
        return ControlMessage(kind=kind, channel=channel, nonce=nonce)
    if kind == CTRL_NACK:
        flow = 0
        try:
            if version == _VERSION:
                layout = _CTRL_NACK_STRUCT
                if len(packet) < layout.size:
                    raise WireFormatError(f"truncated NACK packet of {len(packet)} bytes")
                _, _, _, seq, k, m, count = layout.unpack_from(packet)
            else:
                layout = _CTRL_NACK_V2_STRUCT
                if len(packet) < layout.size:
                    raise WireFormatError(f"truncated NACK packet of {len(packet)} bytes")
                _, _, _, flow, seq, k, m, count = layout.unpack_from(packet)
        except struct.error as exc:
            raise WireFormatError(str(exc)) from exc
        body = packet[layout.size:]
        if len(body) < count:
            raise WireFormatError(f"NACK lists {count} indices but carries {len(body)}")
        have = tuple(body[:count])
        if any(not 1 <= index <= m for index in have):
            raise WireFormatError(f"NACK share indices out of range 1..{m}: {have}")
        return ControlMessage(kind=kind, seq=seq, k=k, m=m, have=have, flow=flow)
    raise WireFormatError(f"unknown control type {kind}")
