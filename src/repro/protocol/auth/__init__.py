"""Authenticated shares: keyed MACs over share material (docs/AUTH.md).

The robustness machinery below this layer detects corruption only through
Reed-Solomon *consistency* -- which is silent at the ``k = m`` boundary
and bounded by the unique-decoding radius ``floor((m - k) / 2)``
elsewhere.  This package closes the gap the ADVERSARY.md residual-threat
section states: every share carries a truncated keyed-BLAKE2b tag bound
to its (flow, seq, index, scheme, k, m) slot, the receiver verifies
before reassembly, and verified-bad shares become *erasures* for
:func:`repro.sharing.robust.reconstruct_with_erasures` -- recovery holds
with up to ``m - k`` corrupted channels, and forgery is detected
unconditionally under the keyed-MAC assumption.

Key model: one root key per deployment, per-flow keys derived via the
SHA-256 identity pattern (:mod:`repro.protocol.auth.keys`), so fleet
tenants are cryptographically isolated and shards stay byte-identical.
"""

from repro.protocol.auth.keys import (
    AuthConfig,
    KeyChain,
    derive_flow_key,
    derive_root_key,
)
from repro.protocol.auth.mac import ShareAuthenticator, compute_tag

__all__ = [
    "AuthConfig",
    "KeyChain",
    "ShareAuthenticator",
    "compute_tag",
    "derive_flow_key",
    "derive_root_key",
]
