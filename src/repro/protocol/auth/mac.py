"""Per-share keyed MACs: tag construction and constant-time verification.

The tag is BLAKE2b in keyed mode (:func:`hashlib.blake2b` with ``key=``),
truncated to :data:`repro.protocol.wire.TAG_SIZE` bytes, over the share
*body* prefixed with the header fields that bind it to its slot::

    tag = BLAKE2b(key=flow_key, digest_size=TAG_SIZE)(
        scheme_id || seq || index || k || m || flow || data)

Binding the header fields means an adversary cannot cut a validly-tagged
share loose and replant it under another sequence number, index, flow or
scheme -- the replay/forge primitives in :mod:`repro.adversary.active`
exercise exactly those moves.  Verification recomputes the tag and
compares with :func:`hmac.compare_digest`, so the comparison itself
leaks nothing through timing.

A verified tag converts a corrupted channel from an *error* (cost: two
units of redundancy in unique decoding) into an *erasure* (cost: one) --
see :func:`repro.sharing.robust.reconstruct_with_erasures`.
"""

from __future__ import annotations

import hashlib
import hmac
import struct

from repro.protocol.auth.keys import AuthConfig, KeyChain
from repro.protocol.wire import TAG_SIZE
from repro.sharing.base import Share

#: Header fields bound into the tag, packed big-endian:
#: scheme_id (1) || seq (8) || index (1) || k (1) || m (1) || flow (4).
_BIND = struct.Struct(">BQBBBI")


def compute_tag(
    mac_key: bytes, scheme_id: int, seq: int, index: int, k: int, m: int,
    flow: int, data: bytes,
) -> bytes:
    """The truncated keyed-BLAKE2b tag for one share in its slot."""
    bound = _BIND.pack(scheme_id, seq, index, k, m, flow) + data
    return hashlib.blake2b(bound, key=mac_key, digest_size=TAG_SIZE).digest()


class ShareAuthenticator:
    """Tags and verifies shares with per-flow keys from one root key."""

    def __init__(self, config: AuthConfig) -> None:
        self.config = config
        self._chain = KeyChain(config.root_key)

    def tag(
        self, flow: int, seq: int, share: Share, scheme_id: int
    ) -> bytes:
        """The wire tag for ``share`` carried as (flow, seq, index)."""
        return compute_tag(
            self._chain.flow_key(flow), scheme_id, seq,
            share.index, share.k, share.m, flow, share.data,
        )

    def verify(
        self, flow: int, seq: int, share: Share, scheme_id: int, tag: bytes
    ) -> bool:
        """Whether ``tag`` authenticates ``share`` in its claimed slot.

        Constant-time comparison; any mismatch -- wrong key (cross-tenant
        forgery), wrong slot (replanted share), wrong body (corruption)
        -- fails identically.
        """
        if tag is None or len(tag) != TAG_SIZE:
            return False
        expected = self.tag(flow, seq, share, scheme_id)
        return hmac.compare_digest(expected, tag)

    def __repr__(self) -> str:
        # Never show key material (docs/TAINT.md).
        return f"ShareAuthenticator(config={self.config!r})"
