"""Key material for authenticated shares: derivation, chains, config.

The key model is deliberately small (docs/AUTH.md):

* one **root key** per protected deployment (a fleet cell, an attack
  harness run, a point-to-point pair) -- 16..64 bytes of shared secret;
* one **flow key** per flow id, derived from the root key with the same
  SHA-256-over-canonical-JSON identity derivation the sweep layer uses
  for seeds (:func:`repro.sweep.spec.derive_seed`).  Derivation depends
  only on the (root key, flow id) identity, never on worker order or
  wall clock, so fleet shards derive byte-identical keys and per-tenant
  flows are cryptographically isolated from each other: tenant A's key
  authenticates nothing for tenant B.

Key material is *secret*: the taint policy registers ``root_key`` /
``mac_key`` / ``auth_key`` parameters as sources (docs/TAINT.md), and
every ``__repr__`` here redacts.
"""

from __future__ import annotations

import hashlib

from repro.protocol.wire import TAG_SIZE
from repro.sweep.spec import canonical_json

#: Accepted root/flow key lengths in bytes (inclusive).  BLAKE2b keyed
#: mode accepts up to 64; below 16 the MAC assumption is not credible.
MIN_KEY_SIZE = 16
MAX_KEY_SIZE = 64

#: Domain-separation label baked into every flow-key derivation.
_PURPOSE = "share-mac"


def _check_key(key: bytes, what: str) -> bytes:
    if not isinstance(key, (bytes, bytearray)):
        raise TypeError(f"{what} must be bytes, got {type(key).__name__}")
    key = bytes(key)
    if not MIN_KEY_SIZE <= len(key) <= MAX_KEY_SIZE:
        raise ValueError(
            f"{what} must be {MIN_KEY_SIZE}..{MAX_KEY_SIZE} bytes, got {len(key)}"
        )
    return key


def derive_root_key(seed: int) -> bytes:
    """A deterministic 32-byte root key for simulation identity ``seed``.

    Simulations have no key-distribution problem -- both endpoints are
    this process -- so the root key is derived from the run's seed the
    same way every other per-run identity is.  Real deployments would
    provision the root key out of band instead.
    """
    digest = hashlib.sha256(
        canonical_json({"purpose": _PURPOSE, "root_seed": int(seed)}).encode()
    ).digest()
    return digest


def derive_flow_key(root_key: bytes, flow: int) -> bytes:
    """The per-flow MAC key: SHA-256 over the (root, flow) identity.

    Mirrors :func:`repro.sweep.spec.derive_seed`: canonical JSON of the
    identity, hashed -- so the derivation is order-free and shard-safe.
    """
    root_key = _check_key(root_key, "root_key")
    if flow < 0:
        raise ValueError(f"flow id out of range: {flow}")
    digest = hashlib.sha256(
        canonical_json(
            {"flow": int(flow), "purpose": _PURPOSE, "root": root_key.hex()}
        ).encode()
    ).digest()
    return digest


class KeyChain:
    """Memoising per-flow key derivation from one root key."""

    def __init__(self, root_key: bytes) -> None:
        self._root_key = _check_key(root_key, "root_key")
        self._flow_keys: dict = {}

    def flow_key(self, flow: int) -> bytes:
        key = self._flow_keys.get(flow)
        if key is None:
            key = derive_flow_key(self._root_key, flow)
            self._flow_keys[flow] = key
        return key

    def __repr__(self) -> str:
        # Key material must never leak through logs or pytest output
        # (docs/TAINT.md); describe the chain, not its bytes.
        return f"KeyChain(flows={sorted(self._flow_keys)})"


class AuthConfig:
    """Configuration for the authenticated-share layer.

    Attributes:
        root_key: the shared root secret (16..64 bytes).
        tag_size: bytes of truncated BLAKE2b tag on the wire (fixed at
            :data:`repro.protocol.wire.TAG_SIZE` in this wire version;
            kept explicit so the config is self-describing).
    """

    def __init__(self, root_key: bytes, tag_size: int = TAG_SIZE) -> None:
        self.root_key = _check_key(root_key, "root_key")
        if tag_size != TAG_SIZE:
            raise ValueError(
                f"wire version 3 carries exactly {TAG_SIZE}-byte tags, got {tag_size}"
            )
        self.tag_size = tag_size

    def __repr__(self) -> str:
        # Redacted: the root key is the deployment's whole secret.
        return f"AuthConfig(root_key=<{len(self.root_key)} bytes>, tag_size={self.tag_size})"
