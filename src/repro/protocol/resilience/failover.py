"""Schedule failover: availability degrades, privacy never does.

When the quarantine set changes, the failover controller recomputes what
the sender should do with the surviving channels:

* **restored** -- the quarantine set is empty again: the sampler the node
  was attached with is put back (the optimal plan).
* **replanned** -- requirements were given: the LP
  (:func:`repro.core.planner.plan_max_rate`) is re-solved over the
  surviving subset under the *original* requirements, with the kappa
  floor passed as ``min_kappa`` so the search can only trade rate, never
  the privacy threshold.  The sub-plan's subsets are remapped back to
  original channel indices.
* **masked** -- no requirements (dynamic ReMICSS): the (k, m) sampler is
  kept -- its thresholds are untouched, so kappa is preserved by
  construction -- and the write selector simply excludes quarantined
  channels, provided enough survivors remain for the largest m.
* **degraded** -- nothing feasible survives: admission is paused at the
  source queue (recording :class:`~repro.core.planner.NoFeasiblePlanError`)
  rather than sending shares under a weaker threshold.  Leak nothing,
  deliver nothing.

Every applied decision is appended to :attr:`FailoverController.records`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.core.channel import ChannelSet
from repro.core.planner import NoFeasiblePlanError, Plan, Requirements, plan_max_rate
from repro.core.schedule import ShareSchedule
from repro.protocol.remicss import RemicssNode
from repro.protocol.scheduler import (
    DynamicParameterSampler,
    ExplicitScheduler,
    ParameterSampler,
)


def sampler_kappa_floor(sampler: ParameterSampler) -> float:
    """The privacy threshold floor implied by a sampler.

    For an explicit schedule this is the minimum threshold in its
    support; for the dynamic sampler it is floor(kappa) (the smallest
    threshold its atom mixture can draw).
    """
    if isinstance(sampler, ExplicitScheduler):
        return float(min(k for (k, _members), _p in sampler.schedule.support()))
    if isinstance(sampler, DynamicParameterSampler):
        return float(math.floor(sampler.kappa))
    raise TypeError(f"cannot derive a kappa floor from {type(sampler).__name__}")


def schedule_min_threshold(schedule: ShareSchedule) -> int:
    """The smallest threshold k any atom of ``schedule`` can sample."""
    return min(k for (k, _members), _p in schedule.support())


@dataclass(frozen=True)
class FailoverRecord:
    """One applied failover decision."""

    time: float
    quarantined: Tuple[int, ...]
    mode: str  # "restored" | "replanned" | "masked" | "degraded"
    plan: Optional[Plan] = None
    error: Optional[str] = None


class FailoverController:
    """Swaps a node's sampler as the quarantine set evolves.

    Args:
        node: the protocol node whose sampler is managed.
        channels: the model channel set the node runs over.
        rng: seeded stream for swapped-in explicit schedulers.
        requirements: the deployment's bounds; when given, failover
            re-solves the LP over survivors, otherwise it masks the
            dynamic selector.
        kappa_floor: privacy threshold floor; defaults to the floor
            implied by the sampler the node is attached with.
    """

    def __init__(
        self,
        node: RemicssNode,
        channels: ChannelSet,
        rng,
        requirements: Optional[Requirements] = None,
        kappa_floor: Optional[float] = None,
    ):
        self.node = node
        self.channels = channels
        self.rng = rng
        self.requirements = requirements
        self.base_sampler = node.sampler
        self.kappa_floor = (
            float(kappa_floor) if kappa_floor is not None
            else sampler_kappa_floor(self.base_sampler)
        )
        if self.kappa_floor > sampler_kappa_floor(self.base_sampler):
            raise ValueError(
                f"kappa_floor {self.kappa_floor} exceeds the base sampler's own "
                f"floor {sampler_kappa_floor(self.base_sampler)}"
            )
        self.records: List[FailoverRecord] = []
        self.degraded = False

    def apply(self, now: float, quarantined: FrozenSet[int]) -> FailoverRecord:
        """Recompute the sampler for the given quarantine set."""
        excluded = sorted(quarantined)
        self.node.sender.selector.set_excluded(quarantined)
        if not quarantined:
            record = FailoverRecord(time=now, quarantined=(), mode="restored")
            self._install(self.base_sampler)
        elif self.requirements is not None:
            record = self._replan(now, tuple(excluded))
        else:
            record = self._mask(now, tuple(excluded))
        self.records.append(record)
        return record

    # -- strategies ---------------------------------------------------------------

    def _replan(self, now: float, excluded: Tuple[int, ...]) -> FailoverRecord:
        survivors = [i for i in range(self.channels.n) if i not in set(excluded)]
        if not survivors:
            return self._degrade(now, excluded, "all channels quarantined")
        sub = ChannelSet(self.channels.subset(survivors))
        try:
            plan = plan_max_rate(sub, self.requirements, min_kappa=self.kappa_floor)
        except NoFeasiblePlanError as exc:
            return self._degrade(now, excluded, str(exc))
        schedule = self._remap(plan.schedule, survivors)
        if schedule_min_threshold(schedule) < math.floor(self.kappa_floor):
            # Belt and braces: min_kappa already constrains the search.
            return self._degrade(
                now, excluded,
                f"failover plan threshold below kappa floor {self.kappa_floor}",
            )
        self._install(ExplicitScheduler(schedule, self.rng))
        return FailoverRecord(time=now, quarantined=excluded, mode="replanned", plan=plan)

    def _mask(self, now: float, excluded: Tuple[int, ...]) -> FailoverRecord:
        survivors = self.channels.n - len(excluded)
        needed = self._max_multiplicity(self.base_sampler)
        if survivors < needed:
            return self._degrade(
                now, excluded,
                f"{survivors} surviving channels cannot carry m={needed} shares",
            )
        self._install(self.base_sampler)
        return FailoverRecord(time=now, quarantined=excluded, mode="masked")

    def _degrade(self, now: float, excluded: Tuple[int, ...], why: str) -> FailoverRecord:
        error = NoFeasiblePlanError(why)
        self.degraded = True
        self.node.sender.admission_paused = True
        return FailoverRecord(
            time=now, quarantined=excluded, mode="degraded", error=str(error)
        )

    # -- helpers ------------------------------------------------------------------

    def _install(self, sampler: ParameterSampler) -> None:
        self.degraded = False
        self.node.sampler = sampler
        self.node.sender.sampler = sampler
        self.node.sender.admission_paused = False
        self.node.sender.resample_head()

    def _remap(self, schedule: ShareSchedule, survivors: List[int]) -> ShareSchedule:
        """Lift a sub-channel-set schedule back to original indices."""
        probs = {}
        for (k, members), prob in schedule.support():
            original = frozenset(survivors[j] for j in members)
            probs[(k, original)] = prob
        return ShareSchedule(self.channels, probs)

    @staticmethod
    def _max_multiplicity(sampler: ParameterSampler) -> int:
        if isinstance(sampler, ExplicitScheduler):
            return max(len(members) for (_k, members), _p in sampler.schedule.support())
        if isinstance(sampler, DynamicParameterSampler):
            return math.ceil(sampler.mu)
        raise TypeError(f"cannot derive multiplicity from {type(sampler).__name__}")
