"""Closed-loop channel resilience for the ReMICSS protocol.

The paper's protocol is deliberately best-effort: shares lost in transit
are gone, and the sender keeps spraying shares at a channel until a
periodic review notices.  This package closes the loop without ever
trading privacy for availability:

* :mod:`~repro.protocol.resilience.health` -- per-channel failure
  detector (EWMA loss + phi-accrual-style liveness suspicion), fed by
  sim-time send outcomes and receiver feedback.
* :mod:`~repro.protocol.resilience.quarantine` -- the
  ``HEALTHY -> SUSPECT -> QUARANTINED -> PROBING -> HEALTHY`` state
  machine with exponential-backoff probes gating reinstatement.
* :mod:`~repro.protocol.resilience.failover` -- schedule failover: the
  LP re-solved over the surviving channels under the original
  requirements, degrading rate but never the privacy floor kappa; an
  explicit DEGRADED mode pauses admission when nothing feasible remains.
* :mod:`~repro.protocol.resilience.repair` -- the sender side of the
  bounded NACK/retransmit repair path.
* :mod:`~repro.protocol.resilience.manager` -- the conductor wiring all
  of the above into a running node pair.

Everything is deterministic: timers run on the simulation engine, the
only randomness (repair jitter) comes from a named seeded stream, and the
package passes ``repro lint`` with an empty baseline.  See
docs/RESILIENCE.md.
"""

from repro.protocol.resilience.config import ResilienceConfig
from repro.protocol.resilience.failover import FailoverController, FailoverRecord
from repro.protocol.resilience.health import ChannelHealth, HealthMonitor, HealthSample
from repro.protocol.resilience.manager import ResilienceManager, ResilienceStats
from repro.protocol.resilience.quarantine import ChannelGuard, ChannelState, Transition
from repro.protocol.resilience.repair import RepairBuffer, RepairJob

__all__ = [
    "ChannelGuard",
    "ChannelHealth",
    "ChannelState",
    "FailoverController",
    "FailoverRecord",
    "HealthMonitor",
    "HealthSample",
    "RepairBuffer",
    "RepairJob",
    "ResilienceConfig",
    "ResilienceManager",
    "ResilienceStats",
    "Transition",
]
