"""Tunables for the resilience layer.

One frozen dataclass groups the three concerns the layer balances:

* **detection** -- how quickly a channel is suspected and quarantined
  (review cadence, EWMA weight, loss/suspicion/stuck thresholds);
* **probing** -- how aggressively a quarantined channel is probed for
  reinstatement (initial interval, backoff, cap, acks required);
* **repair** -- how much retransmission the bounded repair path may do
  (buffer size, per-symbol retry budget, backoff and jitter).

Defaults are expressed in the simulator's unit times (1 unit = 10 ms on
the paper's axis) and are deliberately conservative: quarantine needs two
consecutive bad reviews, probes back off exponentially, and repair gives
each symbol at most two extra rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ResilienceConfig:
    """Configuration for :class:`~repro.protocol.resilience.manager.ResilienceManager`.

    Attributes:
        review_period: time between health reviews (unit times).
        loss_alpha: EWMA weight on the newest loss/gap observation.
        suspect_loss: EWMA loss at which a channel becomes SUSPECT.
        quarantine_loss: EWMA loss at which a SUSPECT channel is quarantined.
        suspect_suspicion: liveness suspicion (elapsed-since-evidence over
            the expected evidence gap) at which a channel becomes SUSPECT.
        quarantine_suspicion: suspicion at which a SUSPECT channel is
            quarantined.
        stuck_reviews: consecutive reviews with the port blocked and zero
            serialized packets after which a SUSPECT channel is
            quarantined (one such review already makes it SUSPECT).
        recover_reviews: consecutive clean reviews that return a SUSPECT
            channel to HEALTHY.
        probe_interval: delay from quarantine to the first probe; also the
            base of the exponential backoff.
        probe_backoff: multiplicative probe-interval growth per probe.
        probe_max_interval: cap on the probe interval.
        reinstate_acks: probe acks required before reinstatement.
        failover: re-solve the share schedule when the quarantine set
            changes (see :mod:`~repro.protocol.resilience.failover`).
        kappa_floor: privacy threshold floor enforced on every failover
            schedule; ``None`` derives it from the sampler in use at
            attach time (min k of an explicit schedule's support, else
            floor(kappa) of the dynamic sampler).
        repair: enable the NACK/retransmit repair path.
        repair_buffer_limit: sent symbols remembered for retransmission.
        repair_retry_budget: repair rounds allowed per symbol.
        repair_window: extra reassembly time granted per repair round.
        repair_backoff: sender-side delay before the first repair send.
        repair_backoff_factor: multiplicative growth of that delay.
        repair_jitter: jitter fraction applied to each repair delay
            (drawn from a named seeded stream, so runs stay reproducible).
    """

    review_period: float = 1.0
    loss_alpha: float = 0.3
    suspect_loss: float = 0.5
    quarantine_loss: float = 0.75
    suspect_suspicion: float = 4.0
    quarantine_suspicion: float = 8.0
    stuck_reviews: int = 2
    recover_reviews: int = 2
    probe_interval: float = 1.0
    probe_backoff: float = 2.0
    probe_max_interval: float = 8.0
    reinstate_acks: int = 1
    failover: bool = True
    kappa_floor: Optional[float] = None
    repair: bool = True
    #: Must cover roughly reassembly_timeout * symbol rate, or NACKed
    #: symbols fall out of the buffer before their NACK arrives.
    repair_buffer_limit: int = 4096
    repair_retry_budget: int = 2
    repair_window: float = 2.0
    repair_backoff: float = 0.25
    repair_backoff_factor: float = 2.0
    repair_jitter: float = 0.25

    def __post_init__(self) -> None:
        for name in ("review_period", "probe_interval", "probe_max_interval",
                     "repair_window", "repair_backoff"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        if not 0.0 < self.loss_alpha <= 1.0:
            raise ValueError(f"loss_alpha must be in (0, 1], got {self.loss_alpha}")
        for name in ("suspect_loss", "quarantine_loss"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if self.quarantine_loss < self.suspect_loss:
            raise ValueError("quarantine_loss must be >= suspect_loss")
        for name in ("suspect_suspicion", "quarantine_suspicion"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        if self.quarantine_suspicion < self.suspect_suspicion:
            raise ValueError("quarantine_suspicion must be >= suspect_suspicion")
        for name in ("stuck_reviews", "recover_reviews", "reinstate_acks",
                     "repair_buffer_limit"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.repair_retry_budget < 0:
            raise ValueError(
                f"repair_retry_budget must be >= 0, got {self.repair_retry_budget}"
            )
        if self.probe_backoff < 1.0 or self.repair_backoff_factor < 1.0:
            raise ValueError("backoff factors must be >= 1")
        if self.probe_max_interval < self.probe_interval:
            raise ValueError("probe_max_interval must be >= probe_interval")
        if not 0.0 <= self.repair_jitter <= 1.0:
            raise ValueError(f"repair_jitter must be in [0, 1], got {self.repair_jitter}")
        if self.kappa_floor is not None and self.kappa_floor < 1.0:
            raise ValueError(f"kappa_floor must be >= 1, got {self.kappa_floor}")
