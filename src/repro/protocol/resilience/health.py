"""Per-channel failure detection from sim-time send outcomes.

The monitor folds three deterministic signals, all observable at the
sender (link counters stand in for the loss/delivery feedback a deployed
protocol would obtain from receiver reports, exactly as
:mod:`repro.protocol.adaptive` already does):

* **EWMA loss** -- loss drops over serialized packets since the previous
  review, smoothed with weight ``loss_alpha``.
* **Liveness suspicion** -- a phi-accrual-style score: time since the
  last delivery evidence divided by the EWMA of past evidence gaps.  A
  healthy channel keeps the score near 1; a dead channel's score grows
  linearly with silence.  The score only accrues while the channel has
  unacknowledged demand (packets serialized since the last evidence), so
  an idle channel is never suspected.
* **Stuck reviews** -- consecutive reviews in which the port was blocked
  (not writable) yet serialized nothing.  This catches hard outages even
  when an explicit schedule head-of-line-stalls the sender so completely
  that no loss evidence is generated.

With authenticated shares armed (docs/AUTH.md) the review also feeds
verified-failure evidence: shares whose keyed MAC failed at the receiver
(``tainted_delta``) count against the channel exactly like loss, so a
forgery-heavy channel accrues suspicion and gets quarantined like a
lossy one -- an attacker cannot keep a channel "healthy" by delivering
garbage on time.

Everything is pure arithmetic on review-time deltas: no wall clock, no
randomness, no unordered iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.protocol.resilience.config import ResilienceConfig


@dataclass(frozen=True)
class HealthSample:
    """One channel's detector outputs at a review."""

    channel: int
    loss: float
    suspicion: float
    stuck_reviews: int


class ChannelHealth:
    """Mutable detector state for one channel."""

    __slots__ = (
        "loss_ewma", "gap_ewma", "last_evidence_at", "sent_since_evidence",
        "stuck_reviews",
    )

    def __init__(self, now: float, gap: float):
        self.loss_ewma = 0.0
        self.gap_ewma = gap
        self.last_evidence_at = now
        self.sent_since_evidence = 0
        self.stuck_reviews = 0

    def suspicion(self, now: float) -> float:
        """The liveness suspicion score at time ``now``."""
        if self.sent_since_evidence == 0:
            return 0.0
        return (now - self.last_evidence_at) / self.gap_ewma


class HealthMonitor:
    """Failure detector over ``n`` channels.

    Args:
        n: number of channels.
        config: resilience tunables (EWMA weight, review period).
        now: current sim time (initial evidence timestamp).
    """

    def __init__(self, n: int, config: ResilienceConfig, now: float = 0.0):
        if n < 1:
            raise ValueError(f"need at least one channel, got {n}")
        self.config = config
        self._channels: List[ChannelHealth] = [
            ChannelHealth(now, config.review_period) for _ in range(n)
        ]

    def __len__(self) -> int:
        return len(self._channels)

    def channel(self, index: int) -> ChannelHealth:
        """The detector state for one channel (read-mostly; for tests)."""
        return self._channels[index]

    def observe(
        self,
        now: float,
        channel: int,
        serialized_delta: int,
        loss_delta: int,
        delivered_delta: int,
        blocked: bool,
        tainted_delta: int = 0,
    ) -> HealthSample:
        """Fold one review interval's counters into the detector.

        Args:
            now: current sim time.
            channel: channel index.
            serialized_delta: packets put on the wire since last review.
            loss_delta: packets lost in transit since last review.
            delivered_delta: packets delivered since last review (the
                receiver-feedback stand-in; evidence of liveness).
            blocked: whether the port currently refuses writes.
            tainted_delta: shares delivered on this channel whose keyed
                MAC failed verification since last review (auth armed).
                A verified-bad delivery is as useless as a loss, so it
                folds into the loss EWMA -- clamped so loss + taint never
                exceeds what was actually serialized.
        """
        state = self._channels[channel]
        alpha = self.config.loss_alpha
        if serialized_delta > 0:
            useless = min(loss_delta + max(tainted_delta, 0), serialized_delta)
            observed = useless / serialized_delta
            state.loss_ewma = (1.0 - alpha) * state.loss_ewma + alpha * observed
        state.sent_since_evidence += serialized_delta
        if delivered_delta > 0:
            gap = max(now - state.last_evidence_at, self.config.review_period)
            state.gap_ewma = (1.0 - alpha) * state.gap_ewma + alpha * gap
            state.last_evidence_at = now
            state.sent_since_evidence = 0
        if blocked and serialized_delta == 0:
            state.stuck_reviews += 1
        else:
            state.stuck_reviews = 0
        return HealthSample(
            channel=channel,
            loss=state.loss_ewma,
            suspicion=state.suspicion(now),
            stuck_reviews=state.stuck_reviews,
        )

    def reset(self, channel: int, now: float) -> None:
        """Forget a channel's history (called on reinstatement, so a
        repaired channel starts from a clean slate instead of its
        pre-outage estimates)."""
        self._channels[channel] = ChannelHealth(now, self.config.review_period)
