"""The per-channel quarantine state machine.

::

                 bad review                escalating review
    HEALTHY ----------------> SUSPECT ----------------------> QUARANTINED
       ^                         |                                 |
       |   recover_reviews clean |                probe scheduled  |
       +-------------------------+                                 v
       ^                                                        PROBING
       |                  reinstate_acks probe acks                |
       +-----------------------------------------------------------+

A channel is *suspected* on the first bad review (elevated EWMA loss,
liveness suspicion, or a stuck port) and *quarantined* when the evidence
escalates (loss or suspicion past the quarantine thresholds, or
``stuck_reviews`` consecutive stuck reviews).  Quarantined channels are
probed with exponential backoff; the required number of probe acks
reinstates the channel.  Every transition is appended to an in-order log
with its reason, which the manager exports through ``repro.obs``.

The machine is pure state + arithmetic: the manager owns all timers and
I/O, so this module needs no engine and stays trivially deterministic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.protocol.resilience.config import ResilienceConfig
from repro.protocol.resilience.health import HealthSample


class ChannelState(enum.Enum):
    """Quarantine states, ordered by escalation."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    QUARANTINED = "quarantined"
    PROBING = "probing"

    @property
    def excluded(self) -> bool:
        """Whether the share schedule must avoid this channel."""
        return self in (ChannelState.QUARANTINED, ChannelState.PROBING)


@dataclass(frozen=True)
class Transition:
    """One state change, kept for inspection, tests, and metrics."""

    time: float
    channel: int
    source: ChannelState
    target: ChannelState
    reason: str


class ChannelGuard:
    """The quarantine state machine for one channel.

    Args:
        channel: channel index (carried into transitions).
        config: resilience tunables (thresholds, probe backoff).
    """

    def __init__(self, channel: int, config: ResilienceConfig):
        self.channel = channel
        self.config = config
        self.state = ChannelState.HEALTHY
        self.transitions: List[Transition] = []
        self.probes_sent = 0
        self.quarantined_at: Optional[float] = None
        self.next_probe_at: Optional[float] = None
        self._probe_interval = config.probe_interval
        self._clean_reviews = 0
        self._acks = 0

    # -- review-driven transitions ------------------------------------------------

    def review(self, now: float, sample: HealthSample) -> Optional[Transition]:
        """Fold one health sample; returns the transition taken, if any."""
        if self.state is ChannelState.HEALTHY:
            reason = self._suspect_reason(sample)
            if reason is not None:
                return self._move(now, ChannelState.SUSPECT, reason)
            return None
        if self.state is ChannelState.SUSPECT:
            reason = self._quarantine_reason(sample)
            if reason is not None:
                self._enter_quarantine(now)
                return self._move(now, ChannelState.QUARANTINED, reason)
            if self._suspect_reason(sample) is None:
                self._clean_reviews += 1
                if self._clean_reviews >= self.config.recover_reviews:
                    return self._move(now, ChannelState.HEALTHY, "clean_reviews")
            else:
                self._clean_reviews = 0
            return None
        # QUARANTINED / PROBING recover via probe acks, not reviews.
        return None

    def _suspect_reason(self, sample: HealthSample) -> Optional[str]:
        if sample.stuck_reviews >= 1:
            return "stuck"
        if sample.loss >= self.config.suspect_loss:
            return "loss"
        if sample.suspicion >= self.config.suspect_suspicion:
            return "suspicion"
        return None

    def _quarantine_reason(self, sample: HealthSample) -> Optional[str]:
        if sample.stuck_reviews >= self.config.stuck_reviews:
            return "stuck"
        if sample.loss >= self.config.quarantine_loss:
            return "loss"
        if sample.suspicion >= self.config.quarantine_suspicion:
            return "suspicion"
        return None

    # -- probe-driven transitions -------------------------------------------------

    def probe_due(self, now: float) -> bool:
        """Whether a probe should be sent now."""
        return (
            self.state.excluded
            and self.next_probe_at is not None
            and now >= self.next_probe_at
        )

    def on_probe_sent(self, now: float) -> Optional[Transition]:
        """Record a probe send; backs off the next probe exponentially."""
        self.probes_sent += 1
        self.next_probe_at = now + self._probe_interval
        self._probe_interval = min(
            self._probe_interval * self.config.probe_backoff,
            self.config.probe_max_interval,
        )
        if self.state is ChannelState.QUARANTINED:
            return self._move(now, ChannelState.PROBING, "probe_sent")
        return None

    def on_probe_ack(self, now: float) -> Optional[Transition]:
        """Record a probe ack; reinstates once enough acks arrived."""
        if not self.state.excluded:
            return None
        self._acks += 1
        if self._acks < self.config.reinstate_acks:
            return None
        transition = self._move(now, ChannelState.HEALTHY, "probe_ack")
        self.quarantined_at = None
        self.next_probe_at = None
        self._probe_interval = self.config.probe_interval
        self.probes_sent = 0
        return transition

    # -- internals ----------------------------------------------------------------

    def _enter_quarantine(self, now: float) -> None:
        self.quarantined_at = now
        self._probe_interval = self.config.probe_interval
        self.next_probe_at = now + self._probe_interval
        self.probes_sent = 0
        self._acks = 0

    def _move(self, now: float, target: ChannelState, reason: str) -> Transition:
        transition = Transition(
            time=now, channel=self.channel, source=self.state,
            target=target, reason=reason,
        )
        self.state = target
        self._clean_reviews = 0
        self.transitions.append(transition)
        return transition
