"""The resilience conductor: detection, quarantine, failover, repair.

One :class:`ResilienceManager` protects one traffic direction of a
:class:`~repro.protocol.remicss.PointToPointNetwork` node pair (the
iperf-style workloads send A -> B).  It owns all timers and I/O so the
state machines stay pure:

* a periodic **review** reads per-channel link-counter deltas (the
  simulator's stand-in for receiver feedback, as in
  :mod:`repro.protocol.adaptive`), feeds the
  :class:`~repro.protocol.resilience.health.HealthMonitor`, and drives
  each channel's :class:`~repro.protocol.resilience.quarantine.ChannelGuard`;
* quarantine changes are pushed into the
  :class:`~repro.protocol.resilience.failover.FailoverController`;
* quarantined channels are **probed** on engine timers with exponential
  backoff; probe acks reinstate them and restore the optimal plan;
* both nodes' inbound ports are wrapped so control packets
  (PROBE/PROBE_ACK/NACK) are dispatched here while share traffic flows on
  to the reassembly buffers untouched;
* the receiver's repair hook turns timeout evictions with
  ``1 <= received < k`` shares into NACKs, and the sender's
  :class:`~repro.protocol.resilience.repair.RepairBuffer` turns NACKs
  into bounded retransmissions on healthy channels.

Determinism: every timer runs on the simulation engine, the only
randomness is the named ``resilience.repair`` jitter stream, and all
iteration is over index-ordered lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.planner import Requirements
from repro.netsim.packet import Datagram
from repro.netsim.rng import RngRegistry
from repro.protocol.config import ProtocolConfig
from repro.protocol.receiver import _Entry
from repro.protocol.remicss import PointToPointNetwork, RemicssNode
from repro.protocol.resilience.config import ResilienceConfig
from repro.protocol.resilience.failover import FailoverController
from repro.protocol.resilience.health import HealthMonitor
from repro.protocol.resilience.quarantine import ChannelGuard, ChannelState, Transition
from repro.protocol.resilience.repair import RepairBuffer, RepairJob
from repro.protocol.wire import (
    CTRL_NACK,
    CTRL_PROBE,
    CTRL_PROBE_ACK,
    SCHEME_IDS,
    WireFormatError,
    decode_control,
    encode_nack,
    encode_probe,
    encode_probe_ack,
    encode_share,
    share_packet_size,
)

#: Gauge ordinal exported per channel (docs/OBSERVABILITY.md).
STATE_ORDINALS = {
    ChannelState.HEALTHY: 0,
    ChannelState.SUSPECT: 1,
    ChannelState.QUARANTINED: 2,
    ChannelState.PROBING: 3,
}


@dataclass
class ResilienceStats:
    """Counters kept by the resilience layer (exported via repro.obs)."""

    quarantines: int = 0
    reinstatements: int = 0
    failovers: int = 0
    restores: int = 0
    degraded_entries: int = 0
    probes_sent: int = 0
    probe_acks_sent: int = 0
    probe_acks_received: int = 0
    nacks_sent: int = 0
    nacks_received: int = 0
    repair_shares_sent: int = 0
    repair_shares_dropped: int = 0
    control_decode_errors: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class ResilienceManager:
    """Runs the closed resilience loop for the A -> B direction.

    Args:
        network: the point-to-point testbed network.
        node_tx: the sending node (A; its sender is protected).
        node_rx: the receiving node (B; its reassembly buffer NACKs).
        config: protocol configuration (symbol size, scheme).
        resilience: resilience tunables.
        registry: named seeded streams (uses ``resilience.repair``).
        requirements: the deployment's bounds; enables LP failover.
    """

    def __init__(
        self,
        network: PointToPointNetwork,
        node_tx: RemicssNode,
        node_rx: RemicssNode,
        config: ProtocolConfig,
        resilience: ResilienceConfig,
        registry: RngRegistry,
        requirements: Optional[Requirements] = None,
    ):
        self.network = network
        self.engine = network.engine
        self.node_tx = node_tx
        self.node_rx = node_rx
        self.config = config
        self.resilience = resilience
        self.stats = ResilienceStats()

        self._tx_ports = list(node_tx.sender.ports)
        self._rx_ctrl_ports = list(node_rx.sender.ports)
        n = len(self._tx_ports)
        self.health = HealthMonitor(n, resilience, now=self.engine.now)
        self.guards: List[ChannelGuard] = [
            ChannelGuard(i, resilience) for i in range(n)
        ]
        self.failover = FailoverController(
            node_tx,
            network.channels,
            registry.stream("resilience.failover"),
            requirements=requirements,
            kappa_floor=resilience.kappa_floor,
        )
        self.repair_buffer: Optional[RepairBuffer] = None
        if resilience.repair:
            self.repair_buffer = RepairBuffer(
                resilience, registry.stream("resilience.repair")
            )
            node_tx.sender.on_transmit = self._remember_for_repair
            node_rx.receiver.repair_policy = self._repair_policy

        # Interpose on both inbound directions so control packets are
        # dispatched here; share datagrams flow through untouched.
        for port in network.ports_a_in:
            port.on_receive(self._recv_at_sender)
        for port in network.ports_b_in:
            port.on_receive(self._recv_at_receiver)

        self._last_serialized = [0] * n
        self._last_loss_drops = [0] * n
        self._last_delivered = [0] * n
        #: Per-channel MAC-failure counts at the previous review (auth
        #: armed); deltas feed HealthMonitor suspicion like loss does.
        self._last_auth_fails = [0] * n
        self._review_timer = self.engine.schedule(
            resilience.review_period, self._review
        )

    # -- public surface -----------------------------------------------------------

    @property
    def quarantined(self) -> "frozenset[int]":
        """Channels currently excluded from the share schedule."""
        return frozenset(
            i for i, guard in enumerate(self.guards) if guard.state.excluded
        )

    def transitions(self) -> List[Transition]:
        """All state transitions so far, in time order."""
        merged = [t for guard in self.guards for t in guard.transitions]
        merged.sort(key=lambda t: (t.time, t.channel))
        return merged

    def stop(self) -> None:
        """Cancel the review timer (probe timers die with their guards)."""
        if self._review_timer is not None:
            self._review_timer.cancel()
            self._review_timer = None

    def summary(self) -> dict:
        """JSON-safe run summary for results and benchmarks."""
        return {
            **self.stats.as_dict(),
            "channel_states": [guard.state.value for guard in self.guards],
            "transitions": [
                {
                    "time": t.time,
                    "channel": t.channel,
                    "source": t.source.value,
                    "target": t.target.value,
                    "reason": t.reason,
                }
                for t in self.transitions()
            ],
            "failover_modes": [record.mode for record in self.failover.records],
            "degraded": self.failover.degraded,
        }

    # -- the review loop ----------------------------------------------------------

    def _review(self) -> None:
        now = self.engine.now
        changed = False
        auth_fails = self.node_rx.receiver.auth_fail_by_channel
        for i, port in enumerate(self._tx_ports):
            stats = port.link.stats
            serialized_delta = stats.serialized - self._last_serialized[i]
            loss_delta = (
                stats.loss_drops + stats.down_losses
            ) - self._last_loss_drops[i]
            delivered_delta = stats.delivered - self._last_delivered[i]
            tainted_delta = auth_fails.get(i, 0) - self._last_auth_fails[i]
            self._last_serialized[i] = stats.serialized
            self._last_loss_drops[i] = stats.loss_drops + stats.down_losses
            self._last_delivered[i] = stats.delivered
            self._last_auth_fails[i] = auth_fails.get(i, 0)
            sample = self.health.observe(
                now, i, serialized_delta, loss_delta, delivered_delta,
                blocked=not port.writable(),
                tainted_delta=tainted_delta,
            )
            transition = self.guards[i].review(now, sample)
            if transition is not None and transition.target is ChannelState.QUARANTINED:
                self.stats.quarantines += 1
                changed = True
                self._schedule_probe(i)
        if changed:
            self._refresh_failover()
        self._review_timer = self.engine.schedule(
            self.resilience.review_period, self._review
        )

    def _refresh_failover(self) -> None:
        if not self.resilience.failover:
            # Detector-only mode: quarantine still steers the dynamic
            # selector away from bad channels, but no re-planning happens.
            self.node_tx.sender.selector.set_excluded(self.quarantined)
            self.node_tx.sender.resample_head()
            return
        record = self.failover.apply(self.engine.now, self.quarantined)
        if record.mode in ("replanned", "masked"):
            self.stats.failovers += 1
        elif record.mode == "restored":
            self.stats.restores += 1
        else:
            self.stats.degraded_entries += 1

    # -- probing ------------------------------------------------------------------

    def _schedule_probe(self, channel: int) -> None:
        guard = self.guards[channel]
        if guard.next_probe_at is not None:
            self.engine.schedule_at(guard.next_probe_at, self._probe, channel)

    def _probe(self, channel: int) -> None:
        guard = self.guards[channel]
        if not guard.state.excluded:
            return  # reinstated while this timer was in flight
        payload = encode_probe(channel, guard.probes_sent)
        datagram = Datagram(
            size=len(payload), payload=payload,
            meta={"ctrl": CTRL_PROBE, "channel": channel},
        )
        # Send straight on the link: probing a downed channel is the
        # point, and the failed attempt is accounted as a down drop.
        self._tx_ports[channel].send(datagram)
        self.stats.probes_sent += 1
        guard.on_probe_sent(self.engine.now)
        self._schedule_probe(channel)

    # -- control dispatch ---------------------------------------------------------

    def _recv_at_receiver(self, datagram: Datagram) -> None:
        """B's inbound path: answer probes, pass shares to reassembly."""
        if "ctrl" not in datagram.meta:
            self.node_rx.receiver.handle_datagram(datagram)
            return
        message = self._decode(datagram)
        if message is None:
            return
        if message.kind == CTRL_PROBE:
            reply = encode_probe_ack(message.channel, message.nonce)
            port = self._rx_ctrl_ports[message.channel]
            if port.send(Datagram(
                size=len(reply), payload=reply,
                meta={"ctrl": CTRL_PROBE_ACK, "channel": message.channel},
            )):
                self.stats.probe_acks_sent += 1

    def _recv_at_sender(self, datagram: Datagram) -> None:
        """A's inbound path: probe acks and NACKs; B -> A shares flow on."""
        if "ctrl" not in datagram.meta:
            self.node_tx.receiver.handle_datagram(datagram)
            return
        message = self._decode(datagram)
        if message is None:
            return
        if message.kind == CTRL_PROBE_ACK:
            self.stats.probe_acks_received += 1
            self._on_probe_ack(message.channel)
        elif message.kind == CTRL_NACK:
            self.stats.nacks_received += 1
            self._on_nack(message.flow, message.seq, message.have)

    def _decode(self, datagram: Datagram):
        try:
            return decode_control(datagram.payload or b"")
        except WireFormatError:
            self.stats.control_decode_errors += 1
            return None

    def _on_probe_ack(self, channel: int) -> None:
        guard = self.guards[channel]
        transition = guard.on_probe_ack(self.engine.now)
        if transition is not None:
            self.stats.reinstatements += 1
            self.health.reset(channel, self.engine.now)
            self._refresh_failover()

    # -- repair -------------------------------------------------------------------

    def _remember_for_repair(self, flow, seq, k, m, offered_at, shares) -> None:
        self.repair_buffer.remember(flow, seq, k, m, offered_at, shares)

    def _repair_policy(self, entry: _Entry) -> Optional[float]:
        """Receiver-side hook: NACK an eviction-bound partial symbol.

        Returns the extra reassembly time to grant, or None to let the
        eviction proceed.  Requires ``1 <= received < k`` -- a symbol with
        zero shares cannot be identified (its parameters are unknown to
        the receiver), and one at or past k is completing anyway.  The
        NACK carries the entry's flow id, so a repair can only ever be
        answered with that flow's own shares.
        """
        if entry.repair_rounds >= self.resilience.repair_retry_budget:
            return None
        held = len(entry.shares)
        if not 1 <= held < entry.k:
            return None
        payload = encode_nack(
            entry.seq, entry.k, entry.m, sorted(entry.shares), flow=entry.flow
        )
        port = self._first_writable(self._rx_ctrl_ports)
        if port is None:
            return None
        if not port.send(Datagram(
            size=len(payload), payload=payload, meta={"ctrl": CTRL_NACK},
        )):
            return None
        self.stats.nacks_sent += 1
        entry.repair_rounds += 1
        return self.resilience.repair_window

    def _on_nack(self, flow: int, seq: int, have) -> None:
        if self.repair_buffer is None:
            return
        job = self.repair_buffer.handle_nack(self.engine.now, flow, seq, have)
        if job is not None:
            self.engine.schedule_at(job.send_at, self._send_repair, job)

    def _send_repair(self, job: RepairJob) -> None:
        """Retransmit a job's shares on healthy, writable channels."""
        excluded = self.quarantined
        ready = [
            port for port in self._tx_ports
            if port.index not in excluded and port.writable()
        ]
        ready.sort(key=lambda port: (-port.headroom, port.index))
        sent = 0
        for (index, share), port in zip(job.shares, ready):
            meta = {
                "seq": job.seq, "index": index, "k": job.k, "m": job.m,
                "symbol_sent_at": job.offered_at, "channel": port.index,
                "repair_round": job.round,
            }
            if job.flow != 0:
                meta["flow"] = job.flow
            if share is None:
                datagram = Datagram(
                    size=share_packet_size(self.config.symbol_size, job.flow),
                    meta=meta,
                )
            else:
                # Repairs are re-tagged per flow: the retransmitted share
                # occupies the same (flow, seq, index) slot, so its tag is
                # recomputed with that flow's key -- a repair is as
                # verifiable as the original transmission.
                tag = None
                authenticator = self.node_tx.sender.authenticator
                if authenticator is not None:
                    tag = authenticator.tag(
                        job.flow, job.seq, share,
                        SCHEME_IDS[self.config.scheme.name],
                    )
                packet = encode_share(
                    job.seq, share, self.config.scheme.name, flow=job.flow, tag=tag
                )
                datagram = Datagram(size=len(packet), payload=packet, meta=meta)
            if port.send(datagram):
                sent += 1
        self.stats.repair_shares_sent += sent
        self.stats.repair_shares_dropped += len(job.shares) - sent

    @staticmethod
    def _first_writable(ports):
        for port in ports:
            if port.writable():
                return port
        return None
