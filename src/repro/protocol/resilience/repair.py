"""The sender side of the bounded repair path.

The receiver NACKs a symbol that hits timeout eviction holding
``1 <= received < k`` shares (see the repair hook in
:mod:`repro.protocol.receiver`).  On the sender, a bounded buffer
remembers the last ``repair_buffer_limit`` transmitted symbols; a NACK
whose symbol is still buffered yields a :class:`RepairJob`: the missing
share indices (exactly enough to reach k), scheduled after an exponential
backoff with deterministic seeded jitter.

Two bounds keep repair from amplifying load: a per-symbol retry budget,
and the buffer itself (symbols evicted from it are beyond repair).  Only
*original* shares are ever retransmitted -- repair never performs a fresh
split and never sends more distinct indices than the original m, so the
adversary's view is a subset of what a loss-free run would have shown
(docs/RESILIENCE.md).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.protocol.resilience.config import ResilienceConfig
from repro.sharing.base import Share


@dataclass(frozen=True)
class RepairJob:
    """One scheduled retransmission for a NACKed symbol.

    Attributes:
        flow: flow the symbol belongs to (0 = default single-flow stream).
        seq: symbol sequence number (unique within its flow).
        k: threshold.
        m: multiplicity of the original transmission.
        offered_at: when the symbol entered the sender (delay accounting).
        send_at: sim time the retransmission should happen.
        round: 1-based repair round for this symbol.
        shares: ``(index, share)`` pairs to resend; ``share`` is ``None``
            in synthetic mode (header-only datagrams).
    """

    seq: int
    k: int
    m: int
    offered_at: float
    send_at: float
    round: int
    shares: Tuple[Tuple[int, Optional[Share]], ...]
    flow: int = 0


class _BufferedSymbol:
    __slots__ = ("flow", "seq", "k", "m", "offered_at", "shares", "rounds", "next_ok_at")

    def __init__(
        self, flow: int, seq: int, k: int, m: int, offered_at: float,
        shares: Tuple[Optional[Share], ...],
    ):
        self.flow = flow
        self.seq = seq
        self.k = k
        self.m = m
        self.offered_at = offered_at
        self.shares = shares  # position i holds share index i+1
        self.rounds = 0
        self.next_ok_at = 0.0


class RepairBuffer:
    """Bounded memory of sent symbols, serving NACKs into repair jobs.

    Args:
        config: resilience tunables (buffer bound, budget, backoff).
        rng: seeded stream for retransmission jitter.
    """

    def __init__(self, config: ResilienceConfig, rng: np.random.Generator):
        self.config = config
        self.rng = rng
        self.unknown_nacks = 0
        self.budget_exhausted = 0
        self.duplicate_nacks = 0
        # Keyed by (flow, seq): a NACK can only ever be answered with the
        # shares of its own flow, so repair never crosses tenants.
        self._symbols: "OrderedDict[tuple, _BufferedSymbol]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._symbols)

    def remember(
        self,
        flow: int,
        seq: int,
        k: int,
        m: int,
        offered_at: float,
        shares: Sequence[Optional[Share]],
    ) -> None:
        """Buffer one transmitted symbol, evicting the oldest when full."""
        while len(self._symbols) >= self.config.repair_buffer_limit:
            self._symbols.popitem(last=False)
        self._symbols[(flow, seq)] = _BufferedSymbol(
            flow, seq, k, m, offered_at, tuple(shares)
        )

    def handle_nack(
        self, now: float, flow: int, seq: int, have: Sequence[int]
    ) -> Optional[RepairJob]:
        """Turn a NACK into a repair job, or None if repair is not possible.

        ``None`` outcomes are counted by cause: the symbol fell out of the
        buffer (``unknown_nacks``), its retry budget ran out
        (``budget_exhausted``), or a duplicate NACK arrived before the
        previous round's send time (``duplicate_nacks``).
        """
        symbol = self._symbols.get((flow, seq))
        if symbol is None:
            self.unknown_nacks += 1
            return None
        if symbol.rounds >= self.config.repair_retry_budget:
            self.budget_exhausted += 1
            return None
        if now < symbol.next_ok_at:
            self.duplicate_nacks += 1
            return None
        held = frozenset(have)
        missing = [index for index in range(1, symbol.m + 1) if index not in held]
        needed = symbol.k - len(held)
        if needed <= 0 or not missing:
            self.duplicate_nacks += 1
            return None
        delay = self.config.repair_backoff * (
            self.config.repair_backoff_factor ** symbol.rounds
        )
        jitter = float(self.rng.random()) * self.config.repair_jitter * delay
        send_at = now + delay + jitter
        symbol.rounds += 1
        symbol.next_ok_at = send_at
        picked = missing[:needed]
        return RepairJob(
            seq=seq,
            k=symbol.k,
            m=symbol.m,
            offered_at=symbol.offered_at,
            send_at=send_at,
            round=symbol.rounds,
            shares=tuple((index, symbol.shares[index - 1]) for index in picked),
            flow=flow,
        )

    def forget(self, flow: int, seq: int) -> None:
        """Drop a symbol from the buffer (e.g. once delivered)."""
        self._symbols.pop((flow, seq), None)
