"""Figure 5: loss at maximum rate on the Lossy setup.

The paper's second experiment: with channels in the Lossy configuration
(1, 0.5, 1, 2, 3 percent per direction), traffic is offered at the maximum
rate for each (κ, µ) and the receiver-side datagram loss percentage is
compared against the optimal loss computed by the Sec. IV-D linear program
(minimise L(p) subject to the maximum-rate utilisation constraints).

The paper observes the actual loss tracking the optimum closely for most
parameters, with implementation-specific spikes (e.g. κ=3, µ=3.8) caused
by the dynamic channel-selection heuristic interacting badly with the
specific channel proportions; the "fixed" selector ordering reproduces
that pathology more strongly (see the ablation benchmark).

Like Figure 3, the grid is a :class:`~repro.sweep.SweepSpec` executed by
:class:`~repro.sweep.SweepRunner`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.program import Objective, optimal_property_value
from repro.core.tradeoff import mu_grid
from repro.lp import InfeasibleError
from repro.protocol.config import ProtocolConfig
from repro.sweep import ResultCache, SweepRunner, SweepSpec, values
from repro.workloads.iperf import practical_max_rate, run_iperf
from repro.workloads.setups import lossy_setup


def fig5_spec(
    kappas: Sequence[float] = (1.0, 2.0, 3.0, 4.0, 5.0),
    mu_step: float = 0.1,
    duration: float = 30.0,
    warmup: float = 5.0,
    seed: int = 2,
    quick: bool = False,
    selector_ordering: str = "headroom",
) -> SweepSpec:
    """The Figure 5 sweep as a declarative spec."""
    if quick:
        mu_step = max(mu_step, 0.5)
        duration = min(duration, 10.0)
        warmup = min(warmup, 2.0)
    channels = lossy_setup()
    return SweepSpec(
        spec_id="fig5",
        base={
            "duration": duration,
            "warmup": warmup,
            "seed": seed,
            "selector_ordering": selector_ordering,
        },
        grid=[
            {"kappa": kappa, "mu": mu}
            for kappa in kappas
            for mu in mu_grid(kappa, channels.n, mu_step)
        ],
    )


def fig5_point(params: Dict[str, float], seed: int) -> Optional[Dict[str, float]]:
    """Measure one (κ, µ) loss point; None when the LP is infeasible."""
    channels = lossy_setup()
    kappa, mu = params["kappa"], params["mu"]
    try:
        optimal_loss = optimal_property_value(
            channels, Objective.LOSS, kappa, mu, at_max_rate=True
        )
    except InfeasibleError:  # pragma: no cover - grid is feasible
        return None
    config = ProtocolConfig(
        kappa=kappa,
        mu=mu,
        share_synthetic=True,
        selector_ordering=params["selector_ordering"],
        # Loss runs complete symbols out of order; keep eviction
        # generous so slow shares are not miscounted as loss.
        reassembly_timeout=10.0,
    )
    result = run_iperf(
        channels,
        config,
        # The paper offers at the rate *measured* in experiment 1,
        # i.e. the protocol's achievable (header-adjusted) rate.
        offered_rate=practical_max_rate(channels, mu, config.symbol_size),
        duration=params["duration"],
        warmup=params["warmup"],
        seed=seed,
    )
    return {
        "kappa": kappa,
        "mu": mu,
        "optimal_loss_pct": 100.0 * optimal_loss,
        "actual_loss_pct": result.loss_percent,
        "achieved_rate": result.achieved_rate,
    }


def run_fig5(
    kappas: Sequence[float] = (1.0, 2.0, 3.0, 4.0, 5.0),
    mu_step: float = 0.1,
    duration: float = 30.0,
    warmup: float = 5.0,
    seed: int = 2,
    quick: bool = False,
    selector_ordering: str = "headroom",
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Dict[str, float]]:
    """Measure loss at maximum rate across the (κ, µ) grid.

    Returns:
        Rows with κ, µ, the LP-optimal loss percentage and the measured
        loss percentage (receiver-side, excluding sender source drops).
    """
    spec = fig5_spec(kappas, mu_step, duration, warmup, seed, quick, selector_ordering)
    runner = SweepRunner(jobs=jobs, cache=cache)
    return [row for row in values(runner.run(spec, fig5_point)) if row is not None]


def main(quick: bool = False, jobs: int = 1, cache: Optional[ResultCache] = None) -> None:  # pragma: no cover - exercised via runner
    from repro.experiments.reporting import rows_to_table

    rows = run_fig5(quick=quick, jobs=jobs, cache=cache)
    print("\nFigure 5: loss at maximum rate (Lossy setup)")
    print(
        rows_to_table(
            rows, ["kappa", "mu", "optimal_loss_pct", "actual_loss_pct"], precision=3
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main(quick=True)
