"""CSV export of experiment series (for external plotting).

The drivers return plain row dictionaries; this module writes them as CSV
with a stable column order, one file per figure, so the paper's plots can
be regenerated with any plotting tool.  ``python -m repro.experiments.export``
runs every figure in quick mode and drops the CSVs into ``results/``.
"""

from __future__ import annotations

import csv
import os
from typing import Mapping, Sequence


def write_rows(
    path: str,
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] = None,
) -> int:
    """Write row dicts to ``path`` as CSV; returns the row count.

    Columns default to the union of keys in first-seen order (excluding
    values that are not scalars, e.g. Figure 2's column lists).
    """
    if not rows:
        raise ValueError("no rows to export")
    if columns is None:
        columns = []
        for row in rows:
            for key, value in row.items():
                if key not in columns and isinstance(value, (int, float, str, bool)):
                    columns.append(key)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({key: row.get(key, "") for key in columns})
    return len(rows)


def export_all(output_dir: str = "results", quick: bool = True) -> "dict[str, int]":
    """Run every figure driver and export its series to CSV.

    Returns a mapping of output path to row count.
    """
    from repro.experiments.fig2 import run_fig2
    from repro.experiments.fig3 import run_fig3
    from repro.experiments.fig4 import run_fig4
    from repro.experiments.fig5 import run_fig5
    from repro.experiments.fig67 import run_fig6, run_fig7

    written = {}

    def save(name: str, rows) -> None:
        path = os.path.join(output_dir, name)
        written[path] = write_rows(path, rows)

    save("fig2_packing.csv", run_fig2())
    save("fig3_rate_identical.csv", run_fig3(setup="identical", quick=quick))
    save("fig3_rate_diverse.csv", run_fig3(setup="diverse", quick=quick))
    save("fig4_delay.csv", run_fig4(quick=quick))
    save("fig5_loss.csv", run_fig5(quick=quick))
    save("fig6_highbw.csv", run_fig6(quick=quick))
    save("fig7_highbw.csv", run_fig7(quick=quick))
    return written


def main() -> None:  # pragma: no cover - thin CLI wrapper
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="results", help="output directory")
    parser.add_argument("--full", action="store_true", help="full-resolution sweeps")
    args = parser.parse_args()
    written = export_all(args.output, quick=not args.full)
    for path, count in written.items():
        print(f"wrote {count:>4} rows to {path}")


if __name__ == "__main__":  # pragma: no cover
    main()
