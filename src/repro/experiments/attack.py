"""The "under attack" scenario sweep: Figures 3-7's robustness counterpart.

The paper's figures measure the protocol against *benign* channels; this
grid measures the same (κ, µ)-parameterised protocol against each
canonical active-adversary scenario (docs/ADVERSARY.md).  Each point runs
the seeded :func:`~repro.adversary.active.harness.run_under_attack`
harness and reports the quantities the robustness claims are stated in:
delivery ratio, silent corruption (must be zero), detected corruption and
replay rates, and the κ-floor audit.

Like the figure grids, the sweep is a :class:`~repro.sweep.SweepSpec`
executed by :class:`~repro.sweep.SweepRunner`, so per-point seeds derive
from the (spec_id, params) identity and ``--jobs`` fan-out cannot change
any row.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.adversary.active.harness import run_under_attack
from repro.adversary.active.scenarios import CANONICAL_ATTACKS, canonical_attack
from repro.sweep import ResultCache, SweepRunner, SweepSpec, values

#: Byzantine tolerance used throughout the attack grid; µ is derived as
#: κ + 2e so the robust completion rule floor(µ) >= floor(κ) + 2e always
#: holds across the κ axis.
TOLERANCE = 1


def attack_spec(
    scenarios: Optional[Sequence[str]] = None,
    kappas: Sequence[float] = (1.0, 2.0, 3.0),
    duration: float = 30.0,
    warmup: float = 4.0,
    seed: int = 11,
    quick: bool = False,
    resilience: bool = False,
    auth: bool = False,
) -> SweepSpec:
    """The under-attack sweep as a declarative spec."""
    if scenarios is None:
        scenarios = tuple(sorted(CANONICAL_ATTACKS))
    unknown = sorted(set(scenarios) - set(CANONICAL_ATTACKS))
    if unknown:
        raise ValueError(
            f"unknown attack scenarios {unknown}; expected from {sorted(CANONICAL_ATTACKS)}"
        )
    if quick:
        duration = min(duration, 12.0)
        warmup = min(warmup, 2.0)
        kappas = kappas[:2]
    base = {
        "duration": duration,
        "warmup": warmup,
        "seed": seed,
        "resilience": resilience,
    }
    if auth:
        # Only present when armed: point identity (and thus every derived
        # seed) of the existing unauthenticated grid must not change.
        base["auth"] = True
    return SweepSpec(
        spec_id="attack",
        base=base,
        grid=[
            {"scenario": scenario, "kappa": kappa}
            for scenario in scenarios
            for kappa in kappas
        ],
    )


def attack_point(params: Dict, seed: int) -> Dict:
    """Measure one (scenario, κ) point of the under-attack grid."""
    kappa = params["kappa"]
    warmup = params["warmup"]
    duration = params["duration"]
    auth = params.get("auth", False)
    plan = canonical_attack(params["scenario"], warmup, warmup + duration)
    row = run_under_attack(
        plan,
        kappa=kappa,
        mu=kappa + 2 * TOLERANCE,
        tolerance=TOLERANCE,
        duration=duration,
        warmup=warmup,
        seed=seed,
        resilience=params["resilience"],
        auth=auth,
    )
    receiver = row["receiver"]
    shares = receiver["shares_received"]
    out = {
        "scenario": params["scenario"],
        "kappa": kappa,
        "delivery_ratio": round(row["delivery_ratio"], 6),
        "wrong_payloads": row["wrong_payloads"],
        "reconstruction_errors": receiver["reconstruction_errors"],
        "corrupt_detected_rate": (
            round(receiver["corrupt_shares_detected"] / shares, 6) if shares else 0.0
        ),
        "replayed_dropped": receiver["replayed_shares_dropped"],
        "evicted_symbols": receiver["evicted_symbols"],
        "min_k_sampled": row["min_k_sampled"],
        "kappa_floor_held": row["kappa_floor_held"],
        "admission_paused_drops": row["admission_paused_drops"],
        "attack_applied": row["attack"]["applied"],
        "digest": row["digest"],
    }
    if auth:
        # Auth-only fields ride along only when armed, so the committed
        # unauthenticated rows keep their exact shape.
        out["auth_armed"] = True
        out["auth_failed_shares"] = receiver["auth_failed_shares"]
        out["auth_verified_shares"] = receiver["auth_verified_shares"]
    return out


def run_attack_sweep(
    scenarios: Optional[Sequence[str]] = None,
    kappas: Sequence[float] = (1.0, 2.0, 3.0),
    duration: float = 30.0,
    warmup: float = 4.0,
    seed: int = 11,
    quick: bool = False,
    resilience: bool = False,
    auth: bool = False,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Dict]:
    """Run the under-attack grid and return its rows."""
    spec = attack_spec(scenarios, kappas, duration, warmup, seed, quick, resilience, auth)
    runner = SweepRunner(jobs=jobs, cache=cache)
    return [row for row in values(runner.run(spec, attack_point)) if row is not None]


def main(quick: bool = False, jobs: int = 1, cache: Optional[ResultCache] = None) -> None:  # pragma: no cover - exercised via CLI
    from repro.experiments.reporting import rows_to_table

    rows = run_attack_sweep(quick=quick, jobs=jobs, cache=cache)
    print("\nUnder-attack sweep (canonical adversary scenarios)")
    print(
        rows_to_table(
            rows,
            [
                "scenario", "kappa", "delivery_ratio", "wrong_payloads",
                "reconstruction_errors", "corrupt_detected_rate",
                "replayed_dropped", "kappa_floor_held",
            ],
            precision=3,
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main(quick=True)
