"""Figure 2: choosing M over one unit time to maximise rate, r = (3, 4, 8).

The paper's Figure 2 illustrates how the protocol packs shares into channel
capacity for increasing multiplicity: rows are channels, columns are the
subsets M chosen for successive source symbols.  As µ grows the number of
symbols per unit time falls, and above the Theorem 2 bound not every
channel can stay fully utilised.

This driver reproduces the packing with the greedy water-filling algorithm
(:func:`repro.core.rate.pack_schedule`) and checks the symbol counts
against the Theorem 4 optimum.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.channel import ChannelSet
from repro.core.rate import full_utilization_mu_limit, optimal_rate, pack_schedule

#: The figure's example rate vector.
FIG2_RATES = (3, 4, 8)


def run_fig2(rates: "tuple[int, ...]" = FIG2_RATES) -> List[Dict[str, object]]:
    """Pack shares for every integer multiplicity over ``rates``.

    Returns:
        One row per multiplicity: the packed symbol count, the Theorem 4
        optimum ``⌊R_C⌋``, per-channel share usage, and whether every
        channel was fully utilised (Theorem 2 predicts the cutoff).
    """
    channels = ChannelSet.from_vectors(
        risks=[0.0] * len(rates),
        losses=[0.0] * len(rates),
        delays=[0.0] * len(rates),
        rates=[float(r) for r in rates],
    )
    mu_limit = full_utilization_mu_limit(channels)
    rows = []
    for multiplicity in range(1, len(rates) + 1):
        columns, used = pack_schedule(list(rates), multiplicity)
        optimum = optimal_rate(channels, float(multiplicity))
        rows.append(
            {
                "mu": multiplicity,
                "symbols_packed": len(columns),
                "optimal_floor": int(optimum),
                "share_usage": tuple(used),
                "fully_utilized": all(u == r for u, r in zip(used, rates)),
                "theorem2_allows_full_use": multiplicity <= mu_limit + 1e-12,
                "columns": columns,
            }
        )
    return rows


def main() -> None:  # pragma: no cover - exercised via the runner
    from repro.experiments.reporting import rows_to_table

    rows = run_fig2()
    print("Figure 2: greedy share packing, r =", FIG2_RATES)
    print(
        rows_to_table(
            rows,
            [
                "mu",
                "symbols_packed",
                "optimal_floor",
                "share_usage",
                "fully_utilized",
                "theorem2_allows_full_use",
            ],
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
