"""Run every figure reproduction and print the paper-matching series.

Usage::

    python -m repro.experiments.runner            # full sweeps (slow)
    python -m repro.experiments.runner --quick    # coarse sweeps (~minutes)
    python -m repro.experiments.runner --quick --jobs 8 --resume

The output is the text-table equivalent of the paper's Figures 2-7; the
shape comparisons recorded in EXPERIMENTS.md come from this runner.

``--jobs N`` fans each figure's sweep out over N worker processes (the
rows are identical to a serial run -- see docs/SWEEPS.md), and
``--resume`` caches finished points under ``results/cache/`` so an
interrupted run picks up where it left off.  A figure that raises is
reported (with its traceback) and the remaining figures still run; the
exit code is then nonzero instead of dying mid-run with partial output.
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback

from repro.experiments import fig2, fig3, fig4, fig5, fig67
from repro.sweep import DEFAULT_CACHE_DIR, ResultCache


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="coarse sweeps for a fast end-to-end pass"
    )
    parser.add_argument(
        "--only",
        choices=["fig2", "fig3", "fig4", "fig5", "fig6", "fig7"],
        help="run a single figure reproduction",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per sweep (results identical to --jobs 1)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=f"cache finished sweep points under {DEFAULT_CACHE_DIR}/ and "
        "reuse them on re-runs",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="cache location used with --resume",
    )
    args = parser.parse_args(argv)

    cache = ResultCache(args.cache_dir) if args.resume else None
    sweep_kwargs = {"jobs": args.jobs, "cache": cache}
    figures = [
        ("fig2", lambda: fig2.main(), ("fig2",)),
        ("fig3", lambda: fig3.main(quick=args.quick, **sweep_kwargs), ("fig3",)),
        ("fig4", lambda: fig4.main(quick=args.quick, **sweep_kwargs), ("fig4",)),
        ("fig5", lambda: fig5.main(quick=args.quick, **sweep_kwargs), ("fig5",)),
        ("fig6/7", lambda: fig67.main(quick=args.quick, **sweep_kwargs), ("fig6", "fig7")),
    ]

    # Wall-time reads below are progress reporting only: they are printed
    # for the operator and never reach figure rows, caches or traces.
    started = time.time()  # lint: disable=wall-clock
    failures = []
    for name, run, selectors in figures:
        if args.only is not None and args.only not in selectors:
            continue
        figure_started = time.time()  # lint: disable=wall-clock
        try:
            run()
        except Exception:
            failures.append(name)
            print(f"\n{name} FAILED:\n{traceback.format_exc()}", file=sys.stderr)
        print(f"[{name} wall time: {time.time() - figure_started:.1f}s]")  # lint: disable=wall-clock
    print(f"\ntotal wall time: {time.time() - started:.1f}s")  # lint: disable=wall-clock
    if failures:
        print(f"FAILED figures: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
