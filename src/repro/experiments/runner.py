"""Run every figure reproduction and print the paper-matching series.

Usage::

    python -m repro.experiments.runner            # full sweeps (slow)
    python -m repro.experiments.runner --quick    # coarse sweeps (~minutes)

The output is the text-table equivalent of the paper's Figures 2-7; the
shape comparisons recorded in EXPERIMENTS.md come from this runner.
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import fig2, fig3, fig4, fig5, fig67


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="coarse sweeps for a fast end-to-end pass"
    )
    parser.add_argument(
        "--only",
        choices=["fig2", "fig3", "fig4", "fig5", "fig6", "fig7"],
        help="run a single figure reproduction",
    )
    args = parser.parse_args()

    started = time.time()
    if args.only in (None, "fig2"):
        fig2.main()
    if args.only in (None, "fig3"):
        fig3.main(quick=args.quick)
    if args.only in (None, "fig4"):
        fig4.main(quick=args.quick)
    if args.only in (None, "fig5"):
        fig5.main(quick=args.quick)
    if args.only in (None, "fig6", "fig7"):
        fig67.main(quick=args.quick)
    print(f"\ntotal wall time: {time.time() - started:.1f}s")


if __name__ == "__main__":
    main()
