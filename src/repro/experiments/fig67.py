"""Figures 6 and 7: rate with increasing channel capacity (CPU-bound).

The paper's final experiment raises the Identical setup's per-channel rate
from 100 to 800 Mbps in 25 Mbps steps "to see at what point the bottleneck
becomes something other than the capacity of the channels":

* Figure 6 (κ = µ = 1): achieved rate levels off around 750 Mbps total
  (~150 Mbps per channel) -- the end systems saturate;
* Figure 7 (µ = 5, κ in 1..5): the threshold barely matters at normal
  loads but once the systems are pushed, *larger κ falls short of optimal
  sooner* (reconstruction cost grows with k).

Our substitution for the authors' Xeon workstations is the simulator's
:class:`~repro.netsim.host.CpuModel`: per-symbol sender work of
``split + m × share`` units and receiver work of ``m × share + k ×
reconstruct`` units against a fixed capacity.  The capacity constant below
is calibrated so the κ = µ = 1 level-off lands at the paper's ~750 Mbps;
everything else (where each κ curve departs, their ordering) then follows
from the model rather than from further tuning.

Both figures' capacity sweeps are :class:`~repro.sweep.SweepSpec` grids
executed by :class:`~repro.sweep.SweepRunner` (these are the most
CPU-bound sweeps in the evaluation, so they gain the most from ``jobs``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.rate import optimal_rate
from repro.protocol.config import ProtocolConfig
from repro.sweep import ResultCache, SweepRunner, SweepSpec, values
from repro.workloads.iperf import run_iperf
from repro.workloads.setups import identical_setup, rate_to_mbps

#: Offered load, matching the paper's 1000 Mbps iperf generation rate.
OFFERED_RATE = 1000.0

#: Host CPU capacity in work units per unit time.  With unit costs for
#: split/share/reconstruct work, a κ = µ = 1 symbol costs 2 units at each
#: end, so both hosts saturate at 750 symbols/unit -- the paper's ~750 Mbps
#: level-off.
CPU_CAPACITY = 1500.0

#: Per-channel rate sweep in Mbps: 100 to 800 in steps of 25 (the paper's).
RATE_SWEEP_MBPS = tuple(float(mbps) for mbps in range(100, 825, 25))


def fig67_point(params: Dict[str, float], seed: int) -> Dict[str, float]:
    """Measure one CPU-bound capacity point; shared by Figures 6 and 7."""
    channel_mbps, kappa, mu = params["channel_mbps"], params["kappa"], params["mu"]
    channels = identical_setup(channel_mbps)
    config = ProtocolConfig(kappa=kappa, mu=mu, share_synthetic=True)
    result = run_iperf(
        channels,
        config,
        offered_rate=OFFERED_RATE,
        duration=params["duration"],
        warmup=params["warmup"],
        seed=seed,
        sender_cpu_capacity=CPU_CAPACITY,
        receiver_cpu_capacity=CPU_CAPACITY,
    )
    optimum = min(optimal_rate(channels, mu), OFFERED_RATE)
    return {
        "channel_mbps": channel_mbps,
        "kappa": kappa,
        "mu": mu,
        "optimal_mbps": rate_to_mbps(optimum),
        "achieved_mbps": result.achieved_mbps,
    }


def fig6_spec(
    sweep_mbps: Sequence[float] = RATE_SWEEP_MBPS,
    duration: float = 20.0,
    warmup: float = 4.0,
    seed: int = 4,
    quick: bool = False,
) -> SweepSpec:
    """The Figure 6 capacity sweep (κ = µ = 1) as a declarative spec."""
    if quick:
        sweep_mbps = tuple(np.arange(100.0, 850.0, 100.0))
        duration = min(duration, 6.0)
        warmup = min(warmup, 1.5)
    return SweepSpec(
        spec_id="fig6",
        base={"kappa": 1.0, "mu": 1.0, "duration": duration, "warmup": warmup, "seed": seed},
        axes={"channel_mbps": [float(mbps) for mbps in sweep_mbps]},
    )


def fig7_spec(
    sweep_mbps: Sequence[float] = RATE_SWEEP_MBPS,
    kappas: Sequence[float] = (1.0, 2.0, 3.0, 4.0, 5.0),
    duration: float = 20.0,
    warmup: float = 4.0,
    seed: int = 5,
    quick: bool = False,
) -> SweepSpec:
    """The Figure 7 capacity sweep (µ = 5, κ in 1..5) as a declarative spec."""
    if quick:
        sweep_mbps = tuple(np.arange(100.0, 850.0, 100.0))
        kappas = (1.0, 3.0, 5.0)
        duration = min(duration, 6.0)
        warmup = min(warmup, 1.5)
    return SweepSpec(
        spec_id="fig7",
        base={"mu": 5.0, "duration": duration, "warmup": warmup, "seed": seed},
        axes={
            "kappa": [float(kappa) for kappa in kappas],
            "channel_mbps": [float(mbps) for mbps in sweep_mbps],
        },
    )


def run_fig6(
    sweep_mbps: Sequence[float] = RATE_SWEEP_MBPS,
    duration: float = 20.0,
    warmup: float = 4.0,
    seed: int = 4,
    quick: bool = False,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Dict[str, float]]:
    """Figure 6: κ = µ = 1 over the capacity sweep.

    Returns rows with the per-channel rate, the optimal multichannel rate
    (capped by the offered load, as in the paper's measurement), and the
    achieved rate.  The level-off point is where achieved departs from
    optimal.
    """
    spec = fig6_spec(sweep_mbps, duration, warmup, seed, quick)
    runner = SweepRunner(jobs=jobs, cache=cache)
    return values(runner.run(spec, fig67_point))


def run_fig7(
    sweep_mbps: Sequence[float] = RATE_SWEEP_MBPS,
    kappas: Sequence[float] = (1.0, 2.0, 3.0, 4.0, 5.0),
    duration: float = 20.0,
    warmup: float = 4.0,
    seed: int = 5,
    quick: bool = False,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Dict[str, float]]:
    """Figure 7: µ = 5 with κ in 1..5 over the capacity sweep.

    Larger κ makes reconstruction costlier, so its curve departs from
    optimal at lower channel rates -- the paper's headline observation for
    this figure.
    """
    spec = fig7_spec(sweep_mbps, kappas, duration, warmup, seed, quick)
    runner = SweepRunner(jobs=jobs, cache=cache)
    return values(runner.run(spec, fig67_point))


def saturation_point(rows: Sequence[Dict[str, float]], tolerance: float = 0.95) -> float:
    """The lowest per-channel Mbps at which achieved < tolerance x optimal.

    Returns infinity if the curve never departs (useful in tests and the
    EXPERIMENTS.md shape checks).
    """
    for row in sorted(rows, key=lambda r: r["channel_mbps"]):
        if row["achieved_mbps"] < tolerance * row["optimal_mbps"]:
            return row["channel_mbps"]
    return float("inf")


def main(quick: bool = False, jobs: int = 1, cache: Optional[ResultCache] = None) -> None:  # pragma: no cover - exercised via runner
    from repro.experiments.reporting import rows_to_table

    rows6 = run_fig6(quick=quick, jobs=jobs, cache=cache)
    print("\nFigure 6: Identical setup, increasing channel rate, κ = µ = 1")
    print(rows_to_table(rows6, ["channel_mbps", "optimal_mbps", "achieved_mbps"], precision=1))
    print(f"level-off (achieved < 95% optimal) at ~{saturation_point(rows6)} Mbps/channel")

    rows7 = run_fig7(quick=quick, jobs=jobs, cache=cache)
    print("\nFigure 7: Identical setup, increasing channel rate, µ = 5")
    print(rows_to_table(rows7, ["kappa", "channel_mbps", "optimal_mbps", "achieved_mbps"], precision=1))
    for kappa in sorted({row["kappa"] for row in rows7}):
        subset = [row for row in rows7 if row["kappa"] == kappa]
        print(f"κ={kappa}: departs optimal at ~{saturation_point(subset)} Mbps/channel")


if __name__ == "__main__":  # pragma: no cover
    main(quick=True)
