"""Plain-text reporting helpers for the experiment drivers.

The paper's figures are line/surface plots; headless reproduction prints
the same series as aligned text tables so the shape (who wins, where the
bumps and crossovers fall) can be read directly from the benchmark output.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
) -> str:
    """Render rows as an aligned monospace table.

    Floats are fixed to ``precision`` decimals; other values are str()'d.
    Tolerates ragged input: rows shorter than the widest row (or the
    header) are padded with empty cells, longer rows widen the table with
    unnamed columns.  An empty row list renders the header alone, and a
    fully empty table renders as an empty string.
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append(
            [
                f"{value:.{precision}f}" if isinstance(value, float) else str(value)
                for value in row
            ]
        )
    ncols = max(len(r) for r in rendered)
    if ncols == 0:
        return ""
    for r in rendered:
        r.extend([""] * (ncols - len(r)))
    widths = [max(len(r[col]) for r in rendered) for col in range(ncols)]
    lines = []
    for i, row in enumerate(rendered):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def rows_to_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    precision: int = 3,
) -> str:
    """Render a list of row dicts, selecting and ordering ``columns``."""
    return format_table(
        columns, [[row.get(col, "") for col in columns] for row in rows], precision
    )


def summarize_ratio(rows: Sequence[Mapping[str, float]], key_actual: str, key_optimal: str) -> str:
    """One-line worst/mean achieved-to-optimal summary for a rate sweep."""
    ratios = [
        row[key_actual] / row[key_optimal]
        for row in rows
        if row.get(key_optimal) and row[key_optimal] > 0
    ]
    if not ratios:
        return "no comparable rows"
    worst = min(ratios)
    mean = sum(ratios) / len(ratios)
    return (
        f"achieved/optimal over {len(ratios)} points: "
        f"mean {mean:.4f}, worst {worst:.4f} "
        f"(paper reports within 3-4% of optimal)"
    )
