"""Figure-by-figure reproduction drivers (Sec. VI of the paper).

One module per evaluation figure:

* :mod:`repro.experiments.fig2` -- the share-packing construction with
  rates (3, 4, 8);
* :mod:`repro.experiments.fig3` -- optimal vs achieved rate over (κ, µ)
  on the Identical and Diverse setups;
* :mod:`repro.experiments.fig4` -- optimal vs actual delay at maximum
  rate on the Delayed setup;
* :mod:`repro.experiments.fig5` -- loss at maximum rate on the Lossy
  setup;
* :mod:`repro.experiments.fig67` -- rate under increasing channel
  capacity with end-system (CPU) bottlenecks, for µ = 1 (Fig. 6) and
  µ = 5 with varying κ (Fig. 7).

Each driver returns plain row dictionaries and has a ``quick`` mode with a
coarser sweep used by the benchmark suite; ``python -m repro.experiments.runner``
runs everything and prints the paper-matching series.

Every grid is declared as a :class:`~repro.sweep.SweepSpec` (one
``figN_spec`` builder plus a picklable ``figN_point`` function per
module) and executed by :class:`~repro.sweep.SweepRunner`, so each driver
accepts ``jobs`` (process-pool fan-out with rows identical to serial) and
``cache`` (content-addressed resume) -- see ``docs/SWEEPS.md``.
"""

from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig67 import run_fig6, run_fig7

__all__ = ["run_fig2", "run_fig3", "run_fig4", "run_fig5", "run_fig6", "run_fig7"]
