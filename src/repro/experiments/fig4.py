"""Figure 4: optimal and actual delay at maximum rate, Delayed setup.

The paper's delay experiment: channels carry the Diverse rates plus added
one-way delays (2.5, 0.25, 12.5, 5, 0.5 ms).  For each (κ, µ), the echo
tool measures mean RTT/2 while traffic is offered at the maximum rate, and
the result is compared to the optimal delay from the Sec. IV-D program
(minimise D(p) at maximum rate).

The paper plots optimal and actual on *separate* axes because the actual
delay is far larger: the dynamic share schedule keeps queues full at
maximum rate, so queueing dominates -- except where a κ has underutilised
channels to spare ("each delay curve is well-behaved beyond a certain
point... exactly the bumps in the rate curve").  The reproduction exhibits
the same regime change.

Like Figure 3, the grid is a :class:`~repro.sweep.SweepSpec`; each point
(including its LP solve) runs through :class:`~repro.sweep.SweepRunner`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.program import Objective, optimal_property_value
from repro.core.rate import optimal_rate
from repro.core.tradeoff import mu_grid
from repro.lp import InfeasibleError
from repro.protocol.config import ProtocolConfig
from repro.sweep import ResultCache, SweepRunner, SweepSpec, values
from repro.workloads.echo import run_echo
from repro.workloads.setups import delay_to_ms, delayed_setup


def fig4_spec(
    kappas: Sequence[float] = (1.0, 2.0, 3.0, 4.0, 5.0),
    mu_step: float = 0.2,
    duration: float = 30.0,
    warmup: float = 5.0,
    seed: int = 3,
    quick: bool = False,
    offered_fraction: float = 1.0,
) -> SweepSpec:
    """The Figure 4 sweep as a declarative spec."""
    if quick:
        mu_step = max(mu_step, 0.5)
        duration = min(duration, 8.0)
        warmup = min(warmup, 2.0)
    channels = delayed_setup()
    return SweepSpec(
        spec_id="fig4",
        base={
            "duration": duration,
            "warmup": warmup,
            "seed": seed,
            "offered_fraction": offered_fraction,
        },
        grid=[
            {"kappa": kappa, "mu": mu}
            for kappa in kappas
            for mu in mu_grid(kappa, channels.n, mu_step)
        ],
    )


def fig4_point(params: Dict[str, float], seed: int) -> Optional[Dict[str, float]]:
    """Measure one (κ, µ) delay point; None when the LP is infeasible."""
    channels = delayed_setup()
    kappa, mu = params["kappa"], params["mu"]
    try:
        optimal_delay = optimal_property_value(
            channels, Objective.DELAY, kappa, mu, at_max_rate=True
        )
    except InfeasibleError:  # pragma: no cover - grid is feasible
        return None
    config = ProtocolConfig(
        kappa=kappa,
        mu=mu,
        reassembly_timeout=20.0,
    )
    result = run_echo(
        channels,
        config,
        offered_rate=params["offered_fraction"] * optimal_rate(channels, mu),
        duration=params["duration"],
        warmup=params["warmup"],
        seed=seed,
    )
    return {
        "kappa": kappa,
        "mu": mu,
        "optimal_delay_ms": delay_to_ms(optimal_delay),
        "actual_delay_ms": result.mean_delay_ms,
        "echoes": result.echoes,
    }


def run_fig4(
    kappas: Sequence[float] = (1.0, 2.0, 3.0, 4.0, 5.0),
    mu_step: float = 0.2,
    duration: float = 30.0,
    warmup: float = 5.0,
    seed: int = 3,
    quick: bool = False,
    offered_fraction: float = 1.0,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Dict[str, float]]:
    """Measure mean one-way delay at maximum rate across the (κ, µ) grid.

    Args:
        offered_fraction: fraction of the optimal rate to offer (1.0 is
            the paper's "at maximum rate"; lower values are useful in the
            ablation that separates queueing from channel delay).
        jobs: worker processes (1 = serial; >1 identical rows, parallel).
        cache: optional result cache for resume/incremental re-runs.

    Returns:
        Rows with κ, µ, the LP-optimal delay (ms) and the measured mean
        one-way delay (ms).
    """
    spec = fig4_spec(kappas, mu_step, duration, warmup, seed, quick, offered_fraction)
    runner = SweepRunner(jobs=jobs, cache=cache)
    return [row for row in values(runner.run(spec, fig4_point)) if row is not None]


def main(quick: bool = False, jobs: int = 1, cache: Optional[ResultCache] = None) -> None:  # pragma: no cover - exercised via runner
    from repro.experiments.reporting import rows_to_table

    rows = run_fig4(quick=quick, jobs=jobs, cache=cache)
    print("\nFigure 4: delay at maximum rate (Delayed setup)")
    print(
        rows_to_table(
            rows, ["kappa", "mu", "optimal_delay_ms", "actual_delay_ms"], precision=3
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main(quick=True)
