"""Figure 3: optimal and actual rate over (κ, µ), Identical and Diverse.

The paper's first experiment: for each κ, the protocol's transmission rate
is measured at values of µ from κ to 5 in steps of 0.1 and compared to the
Theorem-4 optimum.  On the Identical setup the curve is smooth (Corollary
1: every µ fully utilises identical channels); on the Diverse setup the
curve is bumpy, each bump marking a channel that can no longer be fully
utilised (Theorem 2).  The paper reports the implementation within 3% of
optimal on Identical and 4% on Diverse.

The (κ, µ) grid is enumerated as a :class:`~repro.sweep.SweepSpec`, so the
whole figure runs through :class:`~repro.sweep.SweepRunner` -- serially by
default, or fanned out over ``jobs`` worker processes with identical
results (each point's seed is derived from its identity, not from worker
order).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.channel import ChannelSet
from repro.core.rate import optimal_rate
from repro.core.tradeoff import mu_grid
from repro.protocol.config import ProtocolConfig
from repro.sweep import ResultCache, SweepRunner, SweepSpec, values
from repro.workloads.iperf import run_iperf
from repro.workloads.setups import diverse_setup, identical_setup, rate_to_mbps

#: Offered load for every measurement, in symbols per unit time.  The
#: paper offers 1000 Mbps, far above any setup's capacity, so the sender
#: is always saturated; 1000 symbols/unit is the same number on our axis.
OFFERED_RATE = 1000.0


def fig3_channels(setup: str) -> ChannelSet:
    """The two setups of Figure 3: "identical" (100 Mbps) or "diverse"."""
    if setup == "identical":
        return identical_setup(100.0)
    if setup == "diverse":
        return diverse_setup()
    raise ValueError(f"unknown Figure 3 setup {setup!r}")


def fig3_spec(
    setup: str = "identical",
    kappas: Sequence[float] = (1.0, 2.0, 3.0, 4.0, 5.0),
    mu_step: float = 0.1,
    duration: float = 30.0,
    warmup: float = 5.0,
    seed: int = 1,
    quick: bool = False,
) -> SweepSpec:
    """The Figure 3 sweep as a declarative spec (one point per (κ, µ))."""
    if quick:
        mu_step = max(mu_step, 0.5)
        duration = min(duration, 10.0)
        warmup = min(warmup, 2.0)
    channels = fig3_channels(setup)
    return SweepSpec(
        spec_id=f"fig3/{setup}",
        base={"setup": setup, "duration": duration, "warmup": warmup, "seed": seed},
        grid=[
            {"kappa": kappa, "mu": mu}
            for kappa in kappas
            for mu in mu_grid(kappa, channels.n, mu_step)
        ],
    )


def fig3_point(params: Dict[str, float], seed: int) -> Dict[str, float]:
    """Measure one (κ, µ) grid point; picklable for process-pool fan-out."""
    channels = fig3_channels(params["setup"])
    kappa, mu = params["kappa"], params["mu"]
    config = ProtocolConfig(kappa=kappa, mu=mu, share_synthetic=True)
    result = run_iperf(
        channels,
        config,
        offered_rate=OFFERED_RATE,
        duration=params["duration"],
        warmup=params["warmup"],
        seed=seed,
    )
    optimum = optimal_rate(channels, mu)
    return {
        "kappa": kappa,
        "mu": mu,
        "optimal_rate": optimum,
        "achieved_rate": result.achieved_rate,
        "optimal_mbps": rate_to_mbps(optimum),
        "achieved_mbps": result.achieved_mbps,
        "ratio": result.achieved_rate / optimum,
    }


def run_fig3(
    setup: str = "identical",
    kappas: Sequence[float] = (1.0, 2.0, 3.0, 4.0, 5.0),
    mu_step: float = 0.1,
    duration: float = 30.0,
    warmup: float = 5.0,
    seed: int = 1,
    quick: bool = False,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Dict[str, float]]:
    """Measure achieved rate across the (κ, µ) grid for one setup.

    Args:
        setup: "identical" or "diverse".
        kappas: the κ values to sweep (the paper uses 1..5).
        mu_step: µ grid step (the paper uses 0.1).
        duration: measurement window per point, in unit times.
        warmup: settling time per point.
        seed: root seed (each grid point derives its own from the sweep
            spec identity -- see :func:`repro.sweep.derive_seed`).
        quick: coarsen the sweep (µ step 0.5, shorter windows) for use in
            the benchmark suite.
        jobs: worker processes (1 = serial in-process; >1 gives identical
            rows, computed in parallel).
        cache: optional result cache for resume/incremental re-runs.

    Returns:
        Rows with κ, µ, optimal and achieved rate (both in symbols/unit
        and Mbps) and their ratio.
    """
    spec = fig3_spec(setup, kappas, mu_step, duration, warmup, seed, quick)
    runner = SweepRunner(jobs=jobs, cache=cache)
    return values(runner.run(spec, fig3_point))


def main(quick: bool = False, jobs: int = 1, cache: Optional[ResultCache] = None) -> None:  # pragma: no cover - exercised via runner
    from repro.experiments.reporting import rows_to_table, summarize_ratio

    for setup in ("identical", "diverse"):
        rows = run_fig3(setup=setup, quick=quick, jobs=jobs, cache=cache)
        print(f"\nFigure 3 ({setup} setup): optimal vs achieved rate over (κ, µ)")
        print(
            rows_to_table(
                rows, ["kappa", "mu", "optimal_mbps", "achieved_mbps", "ratio"], precision=3
            )
        )
        print(summarize_ratio(rows, "achieved_rate", "optimal_rate"))


if __name__ == "__main__":  # pragma: no cover
    main(quick=True)
