"""Replication and confidence intervals for experiment results.

A simulator makes replication cheap: the same experiment re-run under
independent random streams gives an honest error bar for every measured
point.  The figure drivers are deterministic given a seed, so replication
here just forks the seed; :func:`replicate` runs a measurement callable
over several seeds and summarises with a Student-t confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np
from scipy import stats as scipy_stats


@dataclass(frozen=True)
class ReplicatedValue:
    """A measurement replicated across independent seeds.

    Attributes:
        mean: sample mean.
        half_width: half-width of the confidence interval (0 for a single
            replication).
        values: the raw per-seed values.
        confidence: the confidence level the interval was built at.
    """

    mean: float
    half_width: float
    values: "tuple[float, ...]"
    confidence: float

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the confidence interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4f} ± {self.half_width:.4f}"


def summarize(values: Sequence[float], confidence: float = 0.95) -> ReplicatedValue:
    """Student-t confidence interval over replicated measurements.

    Raises:
        ValueError: on an empty sample or a bad confidence level.
    """
    if len(values) == 0:
        raise ValueError("need at least one measurement")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    array = np.asarray(values, dtype=float)
    mean = float(array.mean())
    if len(array) == 1:
        return ReplicatedValue(mean, 0.0, tuple(array), confidence)
    sem = float(array.std(ddof=1) / np.sqrt(len(array)))
    # Exact-zero sentinel: sem is exactly 0.0 iff every replicate was
    # identical (std of equal values), where the t-interval degenerates.
    if sem == 0.0:  # lint: disable=float-eq
        return ReplicatedValue(mean, 0.0, tuple(array), confidence)
    t_crit = float(scipy_stats.t.ppf((1.0 + confidence) / 2.0, df=len(array) - 1))
    return ReplicatedValue(mean, t_crit * sem, tuple(array), confidence)


def replicate(
    measure: Callable[[int], float],
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> ReplicatedValue:
    """Run ``measure(seed)`` once per seed and summarise.

    Args:
        measure: callable mapping a seed to one scalar measurement.
        seeds: independent seeds (each should derive independent random
            streams inside the measurement; the drivers do this through
            :class:`repro.netsim.rng.RngRegistry`).
        confidence: the confidence level of the reported interval.
    """
    values: List[float] = [float(measure(seed)) for seed in seeds]
    return summarize(values, confidence=confidence)


def seeds_for(base_seed: int, count: int) -> List[int]:
    """Well-separated replication seeds derived from one base seed."""
    if count < 1:
        raise ValueError("count must be positive")
    seq = np.random.SeedSequence(base_seed)
    return [int(child.generate_state(1)[0]) for child in seq.spawn(count)]
