"""A wire-tapping eavesdropper with per-channel observation probabilities.

The adversary taps every channel's forward link.  Each transmitted share
is observed independently with the channel's risk probability ``z_i`` --
observation happens at transmission time, so shares lost in transit can
still be captured (exactly the paper's threat model).  Captured shares are
grouped by symbol; once at least k shares of a symbol are held, the
adversary performs a *real* reconstruction, so the compromise counter is
ground truth rather than an assumption about the sharing scheme.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.netsim.link import Link
from repro.netsim.packet import Datagram
from repro.protocol.wire import WireFormatError, decode_share
from repro.sharing.base import ReconstructionError, SecretSharingScheme, Share


class Eavesdropper:
    """Observes shares on tapped links and reconstructs what it can.

    Args:
        links: the links to tap, in channel-index order.
        risks: observation probability per tapped link (the z vector).
        rng: random stream for observation draws.
        scheme: scheme used to attempt reconstruction of captured symbols;
            when ``None`` (synthetic traffic) compromise is counted from
            share counts alone.
    """

    def __init__(
        self,
        links: Sequence[Link],
        risks: Sequence[float],
        rng: np.random.Generator,
        scheme: Optional[SecretSharingScheme] = None,
    ):
        if len(links) != len(risks):
            raise ValueError("need one risk value per tapped link")
        for z in risks:
            if not 0.0 <= z <= 1.0:
                raise ValueError(f"risk out of range: {z}")
        self.risks = list(risks)
        self.rng = rng
        self.scheme = scheme
        self.shares_seen = 0
        self.shares_captured = 0
        self.symbols_observed: "set[int]" = set()
        self.compromised: Dict[int, bytes] = {}
        self._partial: Dict[int, List[Share]] = {}
        self._thresholds: Dict[int, int] = {}
        self._synthetic_counts: Dict[int, int] = {}
        for index, link in enumerate(links):
            link.watch_transmit(lambda dg, i=index: self._observe(i, dg))

    def _observe(self, channel: int, datagram: Datagram) -> None:
        self.shares_seen += 1
        if self.rng.random() >= self.risks[channel]:
            return
        self.shares_captured += 1
        if datagram.payload is None:
            self._observe_synthetic(datagram)
            return
        try:
            header, share = decode_share(datagram.payload)
        except WireFormatError:
            return
        self.symbols_observed.add(header.seq)
        if header.seq in self.compromised:
            return
        captured = self._partial.setdefault(header.seq, [])
        captured.append(share)
        self._thresholds[header.seq] = header.k
        if len(captured) >= header.k and self.scheme is not None:
            try:
                secret = self.scheme.reconstruct(captured)
            except ReconstructionError:
                return
            self.compromised[header.seq] = secret
            del self._partial[header.seq]

    def _observe_synthetic(self, datagram: Datagram) -> None:
        meta = datagram.meta
        seq, k = meta.get("seq"), meta.get("k")
        if seq is None or k is None:
            return
        self.symbols_observed.add(seq)
        count = self._synthetic_counts.get(seq, 0) + 1
        self._synthetic_counts[seq] = count
        if count >= k:
            self.compromised.setdefault(seq, b"")

    # -- reporting ----------------------------------------------------------------

    def compromised_count(self) -> int:
        """Number of symbols the adversary fully learned."""
        return len(self.compromised)

    def compromise_rate(self, symbols_sent: int) -> float:
        """Fraction of sent symbols compromised (the empirical Z)."""
        if symbols_sent <= 0:
            raise ValueError("symbols_sent must be positive")
        return len(self.compromised) / symbols_sent

    def verify_plaintexts(self, originals: Dict[int, bytes]) -> bool:
        """Check every reconstructed secret against the true payloads."""
        return all(
            seq in originals and originals[seq] == secret
            for seq, secret in self.compromised.items()
        )
