"""Adversaries and empirical validation of the privacy model.

The paper's threat model (Sec. III-A) is an eavesdropper who observes each
share sent on channel i independently with probability ``z_i``.  This
package provides:

* :class:`~repro.adversary.eavesdropper.Eavesdropper` -- a wire-tapping
  adversary attached to the simulated links; it records observed shares
  and *actually reconstructs* every symbol for which it captured at least
  k shares, giving a ground-truth compromise count;
* :mod:`~repro.adversary.montecarlo` -- fast vectorised Monte-Carlo
  estimators of Z(p), L(p) and D(p) that sample the model directly
  (without the protocol machinery), used to validate the closed-form
  subset/schedule formulas independently; the ``*_sweep`` variants split
  the trial budget into independently seeded chunks orchestrated by
  :mod:`repro.sweep` (process-pool fan-out, cacheable);
* :mod:`~repro.adversary.riskassess` -- the HMM-based network risk
  assessment the paper cites as the source of the z vector: IDS alert
  streams filtered into per-channel compromise probabilities;
* :mod:`~repro.adversary.active` -- the *active* adversary: declarative
  :class:`~repro.adversary.active.plan.AttackPlan` timelines of
  corruption/forgery/replay/hold/jam primitives plus strategic attackers
  (adaptive low-risk partitioner, targeted symbol corruptor), armed
  against live links by an
  :class:`~repro.adversary.active.engine.AttackInjector` (see
  docs/ADVERSARY.md).
"""

from repro.adversary.active import (
    AttackEvent,
    AttackInjector,
    AttackPlan,
    CANONICAL_ATTACKS,
    canonical_attack,
    run_under_attack,
)

from repro.adversary.eavesdropper import Eavesdropper
from repro.adversary.montecarlo import (
    estimate_schedule_properties,
    estimate_schedule_properties_sweep,
    estimate_subset_properties,
    estimate_subset_properties_sweep,
)
from repro.adversary.riskassess import (
    HmmRiskEstimator,
    HmmRiskModel,
    assess_channel_set,
    simulate_channel_history,
)

__all__ = [
    "AttackEvent",
    "AttackInjector",
    "AttackPlan",
    "CANONICAL_ATTACKS",
    "canonical_attack",
    "run_under_attack",
    "Eavesdropper",
    "estimate_schedule_properties",
    "estimate_schedule_properties_sweep",
    "estimate_subset_properties",
    "estimate_subset_properties_sweep",
    "HmmRiskModel",
    "HmmRiskEstimator",
    "assess_channel_set",
    "simulate_channel_history",
]
