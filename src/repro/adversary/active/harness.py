"""The under-attack measurement harness.

One function, :func:`run_under_attack`, drives a seeded A -> B run with an
:class:`~repro.adversary.active.plan.AttackPlan` armed and returns a
JSON-safe row with everything the acceptance properties, the sweep grids,
``repro attack`` and ``bench_adversary.py`` assert on:

* **end-to-end integrity** -- every offered payload is remembered and
  every delivery compared byte-for-byte (``wrong_payloads`` counts silent
  corruption, the one outcome the robustness machinery must never allow);
* **the κ-floor audit** -- the minimum k the sender ever sampled
  (``min_k_sampled``) against ``floor(κ)``, plus the resilience layer's
  admission-pause accounting, so "the acceptance floor held or degraded
  detectably" is a checkable predicate;
* **a delivery digest** -- a SHA-256 over the ordered delivery trace,
  making byte-identical same-seed replay a one-line comparison.

Defaults are deliberately small (64-byte symbols, five zero-loss
channels with distinct risks) so a scenario runs in well under a second:
zero benign loss means every shortfall is attack-attributable, and the
distinct risks give the adaptive attacker a real ranking to exploit.
"""

from __future__ import annotations

import hashlib
import math
from typing import Optional, Sequence

from repro.core.channel import Channel, ChannelSet
from repro.netsim.rng import RngRegistry
from repro.protocol.auth import AuthConfig, derive_root_key
from repro.protocol.config import ProtocolConfig
from repro.protocol.remicss import PointToPointNetwork
from repro.protocol.resilience import ResilienceConfig, ResilienceManager
from repro.adversary.active.plan import AttackPlan

#: Extra run time after the offer window closes so in-flight shares,
#: repair rounds and held batches drain before stats are read.
DRAIN = 12.0

#: Default testbed: five clean channels with strictly decreasing risks.
#: Zero loss/jitter isolates the adversary's contribution; the distinct
#: risks are the ranking the adaptive attacker partitions by.
DEFAULT_RISKS = (0.3, 0.25, 0.2, 0.15, 0.1)

#: Per-channel propagation delays.  Deliberately *heterogeneous* (real
#: multichannel paths differ): a symbol's shares arrive staggered, so its
#: reassembly entry stays open long enough for forged/replayed packets to
#: collide with live state instead of trivially counting as late.
DEFAULT_DELAYS = (0.05, 0.1, 0.2, 0.4, 0.8)


def default_channels() -> ChannelSet:
    """The harness's canonical five-channel attack testbed."""
    return ChannelSet(
        Channel(risk=risk, loss=0.0, delay=delay, rate=4.0)
        for risk, delay in zip(DEFAULT_RISKS, DEFAULT_DELAYS)
    )


def run_under_attack(
    plan: AttackPlan,
    kappa: float = 2.0,
    mu: float = 4.0,
    tolerance: int = 1,
    symbol_size: int = 64,
    offered_rate: float = 2.0,
    duration: float = 30.0,
    warmup: float = 2.0,
    seed: int = 7,
    resilience: bool = False,
    requirements=None,
    channels: Optional[ChannelSet] = None,
    risks: Optional[Sequence[float]] = None,
    auth: bool = False,
) -> dict:
    """Run one seeded measurement under ``plan`` and return a JSON row.

    Args:
        plan: the attack timeline (times in unit times, absolute).
        kappa: privacy threshold κ; ``floor(κ)`` is the k floor audited.
        mu: multiplicity µ (must satisfy ``floor(µ) >= floor(κ) + 2e``).
        tolerance: Byzantine tolerance e per symbol -- shares are real and
            reconstruction is robust whenever e > 0.
        symbol_size: payload bytes per symbol (small by default: attack
            scenarios measure integrity, not throughput).
        offered_rate: source symbols offered per unit time.
        duration: offer window after ``warmup``; the run itself continues
            for :data:`DRAIN` beyond the window so traffic settles.
        seed: root seed for everything (workload, protocol, attack).
        resilience: arm the resilience layer (quarantine/failover/repair)
            on the A -> B direction.
        requirements: deployment bounds handed to the failover LP; only
            meaningful with ``resilience``.
        channels: testbed override (default :func:`default_channels`).
        risks: adaptive-attacker risk ranking override (defaults to the
            channel set's own risks).
        auth: arm authenticated shares (docs/AUTH.md): every share carries
            a keyed MAC under a root key derived from ``seed``, the
            receiver drops bad-tag shares before reassembly, and robust
            decoding runs in erasure mode -- forged or corrupted shares
            are detected unconditionally, not just when inconsistent.

    Returns:
        A flat JSON-safe dict; see the property suite
        (tests/test_attack_properties.py) for the invariants it carries.
    """
    if channels is None:
        channels = default_channels()
    registry = RngRegistry(seed)
    config = ProtocolConfig(
        kappa=kappa,
        mu=mu,
        symbol_size=symbol_size,
        share_synthetic=False,
        byzantine_tolerance=tolerance,
        auth=AuthConfig(root_key=derive_root_key(seed)) if auth else None,
    )
    network = PointToPointNetwork(channels, symbol_size, registry)
    engine = network.engine
    attacker = network.apply_attack(plan, registry, risks=risks)
    node_a, node_b = network.node_pair(config, registry)
    manager = None
    if resilience:
        manager = ResilienceManager(
            network, node_a, node_b, config, ResilienceConfig(), registry,
            requirements=requirements,
        )

    # Remember every accepted payload by its (acceptance-order) sequence
    # number; compare each delivery byte-for-byte against it.
    originals = {}
    accepted = {"count": 0}
    delivered = {"count": 0}
    wrong = {"count": 0}
    digest = hashlib.sha256()

    def on_deliver(seq: int, payload: Optional[bytes], delay: float) -> None:
        delivered["count"] += 1
        body = hashlib.sha256(payload).hexdigest() if payload is not None else "none"
        digest.update(f"{seq}:{body}:{delay!r}\n".encode())
        original = originals.get(seq)
        if original is None or payload != original:
            wrong["count"] += 1

    node_b.on_deliver(on_deliver)

    payload_rng = registry.stream("workload.payload")
    interval = 1.0 / offered_rate
    end_time = warmup + duration

    def offer() -> None:
        payload = payload_rng.bytes(symbol_size)
        if node_a.send(payload):
            originals[accepted["count"]] = payload
            accepted["count"] += 1
        if engine.now + interval < end_time:
            engine.schedule(interval, offer)

    engine.schedule_at(0.0, offer)
    # run_until, never run(): the attack campaigns self-reschedule and an
    # open-ended run would chase forge/replay ticks forever.
    engine.run_until(end_time + DRAIN)

    sender_stats = node_a.sender.stats
    receiver = node_b.receiver
    picks = sorted(node_a.sender.schedule_picks.items())
    min_k = min((k for (k, _m), _count in picks), default=None)
    k_floor = math.floor(kappa)
    row = {
        "transmitted": sender_stats.symbols_sent,
        "delivered": delivered["count"],
        "wrong_payloads": wrong["count"],
        "delivery_ratio": (
            delivered["count"] / sender_stats.symbols_sent
            if sender_stats.symbols_sent
            else 0.0
        ),
        "min_k_sampled": min_k,
        "kappa_floor": k_floor,
        "kappa_floor_held": min_k is None or min_k >= k_floor,
        "auth_armed": auth,
        "admission_paused_drops": sender_stats.admission_paused_drops,
        "sender": sender_stats.as_dict(),
        "receiver": receiver.stats.as_dict(),
        "corrupt_by_channel": {
            str(channel): count
            for channel, count in sorted(receiver.corrupt_by_channel.items())
        },
        "auth_fail_by_channel": {
            str(channel): count
            for channel, count in sorted(receiver.auth_fail_by_channel.items())
        },
        "attack": attacker.summary(),
        "resilience": manager.summary() if manager is not None else None,
        "digest": digest.hexdigest(),
    }
    return row
