"""The attack injector: applies an :class:`AttackPlan` to live links.

Mirrors :class:`repro.netsim.faults.FaultInjector`: :meth:`AttackInjector.arm`
schedules every plan event on the engine; each applied event mutates
per-link attack state (corruption/forgery/replay/hold regimes), jams
links, or starts one of the strategic attackers from
:mod:`repro.adversary.active.strategies`.  Every applied event is logged
as ``(applied_at, event)`` so reports can attribute damage.

The adversary touches the network through exactly two hooks added for it:

* :attr:`repro.netsim.link.Link.attack_tap` -- an on-path read/modify/
  drop position consulted on every delivery (corrupt in place, swallow
  for delayed reordered release);
* :meth:`repro.netsim.link.Link.inject` -- the write position (forged
  shares, replayed captures, released held packets).

Capture happens at the links' existing transmit taps (the same
observation point as the passive eavesdropper: the paper's threat model
observes shares *as they are sent*, so the adversary may capture --
and later replay -- a share the receiver never got).

Determinism: all randomness flows through per-link named rng streams
(``attack.ch<i>.<dir>``) plus one strategy stream, and the periodic
forge/replay ticks are engine events, so same-seed runs replay
byte-identically.  Periodic campaigns keep rescheduling until their
``*_stop`` event fires (a generation counter kills stale ticks), which is
why attack runs are driven with ``engine.run_until(horizon)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

from repro.netsim.engine import Engine
from repro.netsim.link import DuplexChannel, Link
from repro.netsim.packet import Datagram
from repro.netsim.rng import RngRegistry
from repro.adversary.active.plan import AttackEvent, AttackPlan
from repro.adversary.active.primitives import (
    corrupt_any_packet,
    corrupt_share_packet,
    forge_share_packet,
    is_share,
)
from repro.adversary.active.strategies import AdaptiveAttacker, TargetedCorruptor
from repro.protocol.wire import is_control

#: Default per-link capture ring size (packets); bounds adversary memory
#: exactly like the receiver bounds its reassembly table.
DEFAULT_CAPTURE_LIMIT = 256


@dataclass
class AttackStats:
    """Counters kept by the attack injector (the adversary's own ledger)."""

    shares_corrupted: int = 0
    control_corrupted: int = 0
    shares_forged: int = 0
    packets_replayed: int = 0
    packets_captured: int = 0
    packets_held: int = 0
    packets_released: int = 0
    jams: int = 0
    unjams: int = 0
    adaptive_jams: int = 0
    targeted_symbols: int = 0
    targeted_corruptions: int = 0
    #: Injection attempts that failed because the link was down/unwired.
    injected_dropped: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class _LinkAttackState:
    """Per-(channel, direction) attack posture and campaign machinery."""

    def __init__(self, injector: "AttackInjector", channel: int, direction: str, link: Link):
        self.injector = injector
        self.channel = channel
        self.direction = direction
        self.link = link
        self.rng = injector.registry.stream(f"attack.ch{channel}.{direction}")
        # corruption regime
        self.corrupt_rate = 0.0
        self.corrupt_mode = "flip"
        # forgery campaign
        self.forge_rate = 0.0
        self.forge_mode = "tracking"
        self._forge_gen = 0
        # replay campaign
        self.replay_rate = 0.0
        self.replay_tamper = False
        self._replay_gen = 0
        # hold-and-reorder window
        self.holding = False
        self.hold_for = 0.0
        self.hold_batch = 4
        self._held: List[Datagram] = []
        # capture ring, fed by the link's transmit tap
        self.captured: Deque[Datagram] = deque(maxlen=injector.capture_limit)
        self.last_template: Optional[bytes] = None
        self.last_seq: int = 0
        link.watch_transmit(self._capture)
        link.attack_tap = self._tap

    # -- observation -----------------------------------------------------------

    def _capture(self, datagram: Datagram) -> None:
        """Transmit-time capture: remember a frozen copy for later replay."""
        self.injector.stats.packets_captured += 1
        self.captured.append(
            Datagram(
                size=datagram.size,
                payload=datagram.payload,
                sent_at=datagram.sent_at,
                meta=dict(datagram.meta),
            )
        )
        if datagram.payload is not None and is_share(datagram.payload):
            self.last_template = datagram.payload
            seq = datagram.meta.get("seq")
            if seq is not None:
                self.last_seq = seq

    # -- the on-path tap -------------------------------------------------------

    def _tap(self, datagram: Datagram) -> Optional[Datagram]:
        if self.holding:
            self.injector.stats.packets_held += 1
            self._held.append(datagram)
            if len(self._held) >= self.hold_batch:
                batch = self._held
                self._held = []
                self.injector.engine.schedule(self.hold_for, self._release, batch)
            return None
        targeter = self.injector.targeter
        if (
            targeter is not None
            and self.direction == targeter.direction
            and datagram.payload is not None
            and targeter.should_corrupt(self.channel, datagram)
        ):
            mutated = corrupt_share_packet(datagram.payload, self.rng, "rewrite")
            if mutated is not None:
                self.injector.stats.targeted_corruptions += 1
                return self._with_payload(datagram, mutated)
        if self.corrupt_rate > 0.0 and datagram.payload is not None:
            if self.rng.random() < self.corrupt_rate:
                return self._corrupt(datagram)
        return datagram

    def _corrupt(self, datagram: Datagram) -> Datagram:
        payload = datagram.payload
        if is_share(payload):
            mutated = corrupt_share_packet(payload, self.rng, self.corrupt_mode)
            if mutated is not None:
                self.injector.stats.shares_corrupted += 1
                return self._with_payload(datagram, mutated)
        elif is_control(payload):
            mutated = corrupt_any_packet(payload, self.rng)
            if mutated is not None:
                self.injector.stats.control_corrupted += 1
                return self._with_payload(datagram, mutated)
        return datagram

    @staticmethod
    def _with_payload(datagram: Datagram, payload: bytes) -> Datagram:
        return Datagram(
            size=datagram.size,
            payload=payload,
            sent_at=datagram.sent_at,
            meta=datagram.meta,
        )

    # -- hold / release --------------------------------------------------------

    def _release(self, batch: List[Datagram]) -> None:
        """Re-inject a held batch in reverse order (delay + reorder)."""
        for datagram in reversed(batch):
            if self.link.inject(datagram):
                self.injector.stats.packets_released += 1
            else:
                self.injector.stats.injected_dropped += 1

    def flush_held(self) -> None:
        """Release anything still held (fires on ``hold_stop``)."""
        if self._held:
            batch = self._held
            self._held = []
            self._release(batch)

    # -- forgery campaign ------------------------------------------------------

    def start_forge(self, rate: float, mode: str) -> None:
        self.forge_rate = rate
        self.forge_mode = mode
        self._forge_gen += 1
        self.injector.engine.schedule(1.0 / rate, self._forge_tick, self._forge_gen)

    def stop_forge(self) -> None:
        self.forge_rate = 0.0
        self._forge_gen += 1

    def _forge_tick(self, gen: int) -> None:
        if gen != self._forge_gen:
            return
        template = self.last_template
        if template is not None:
            if self.forge_mode == "tracking":
                seq: Optional[int] = None  # forge for the template's own seq
            else:
                seq = self.last_seq + 1 + int(self.rng.integers(1, 64))
            forged = forge_share_packet(template, self.rng, seq=seq)
            if forged is not None:
                datagram = Datagram(
                    size=len(forged),
                    payload=forged,
                    sent_at=self.injector.engine.now,
                    meta={"channel": self.channel, "forged": True},
                )
                if self.link.inject(datagram):
                    self.injector.stats.shares_forged += 1
                else:
                    self.injector.stats.injected_dropped += 1
        self.injector.engine.schedule(1.0 / self.forge_rate, self._forge_tick, gen)

    # -- replay campaign -------------------------------------------------------

    def start_replay(self, rate: float, tamper: bool) -> None:
        self.replay_rate = rate
        self.replay_tamper = tamper
        self._replay_gen += 1
        self.injector.engine.schedule(1.0 / rate, self._replay_tick, self._replay_gen)

    def stop_replay(self) -> None:
        self.replay_rate = 0.0
        self._replay_gen += 1

    def _replay_tick(self, gen: int) -> None:
        if gen != self._replay_gen:
            return
        if self.captured:
            # Bias toward recent captures: old packets' symbols are long
            # closed (a late-share no-op), recent ones can still collide
            # with live reassembly state.
            window = min(len(self.captured), 32)
            pick = self.captured[
                int(self.rng.integers(len(self.captured) - window, len(self.captured)))
            ]
            payload = pick.payload
            if payload is not None and self.replay_tamper:
                # Body-corrupt a replayed share so a collision with a live
                # slot carries a *mismatched* payload (exactly what the
                # receiver's replay defense detects); non-shares get a
                # framing flip instead.
                mutated = (
                    corrupt_share_packet(payload, self.rng, "flip")
                    if is_share(payload)
                    else corrupt_any_packet(payload, self.rng)
                )
                if mutated is not None:
                    payload = mutated
            datagram = Datagram(
                size=pick.size,
                payload=payload,
                sent_at=self.injector.engine.now,
                meta=dict(pick.meta),
            )
            if self.link.inject(datagram):
                self.injector.stats.packets_replayed += 1
            else:
                self.injector.stats.injected_dropped += 1
        self.injector.engine.schedule(1.0 / self.replay_rate, self._replay_tick, gen)


class AttackInjector:
    """Applies an :class:`AttackPlan` to a set of duplex channels.

    Args:
        engine: the simulation engine the attack is scheduled on.
        channels: the duplex channels, in model channel-index order.
        plan: the attack timeline to apply.
        registry: rng registry the per-link attack streams are drawn from.
        risks: per-channel compromise risks, in channel order -- the
            ranking the adaptive attacker exploits.  Required when the
            plan contains ``adaptive_start`` events.
        capture_limit: per-link capture ring size for replay.

    Call :meth:`arm` once, before running the engine past the plan's
    first event, and drive the run with ``engine.run_until(horizon)``
    (periodic campaigns reschedule themselves until stopped).
    """

    def __init__(
        self,
        engine: Engine,
        channels: Sequence[DuplexChannel],
        plan: AttackPlan,
        registry: RngRegistry,
        risks: Optional[Sequence[float]] = None,
        capture_limit: int = DEFAULT_CAPTURE_LIMIT,
    ):
        self.engine = engine
        self.duplex = list(channels)
        self.plan = plan
        self.registry = registry
        self.risks = list(risks) if risks is not None else None
        self.capture_limit = capture_limit
        self.stats = AttackStats()
        self.log: List[Tuple[float, AttackEvent]] = []
        #: Structured tracer attached by :mod:`repro.obs.instrument`; when
        #: set, every applied event also emits an ``attack_applied`` trace.
        self.tracer = None
        self.adaptive: Optional[AdaptiveAttacker] = None
        self.targeter: Optional[TargetedCorruptor] = None
        self._armed = False
        for event in plan:
            if event.channel is not None and event.channel >= len(self.duplex):
                raise ValueError(
                    f"attack event targets channel {event.channel} but only "
                    f"{len(self.duplex)} channels exist"
                )
            if event.action == "adaptive_start":
                if self.risks is None:
                    raise ValueError(
                        "the adaptive attacker needs per-channel risks; pass risks="
                    )
                if event.params["width"] > len(self.duplex):
                    raise ValueError(
                        f"adaptive width {event.params['width']} exceeds "
                        f"{len(self.duplex)} channels"
                    )
        if self.risks is not None and len(self.risks) != len(self.duplex):
            raise ValueError(
                f"got {len(self.risks)} risks for {len(self.duplex)} channels"
            )
        # One state per (channel, direction), wired lazily at arm() so an
        # unarmed injector leaves the links untouched.
        self._states: List[_LinkAttackState] = []

    def arm(self) -> "AttackInjector":
        """Install the link hooks and schedule every plan event (once)."""
        if self._armed:
            raise RuntimeError("attack plan already armed")
        self._armed = True
        for index, duplex in enumerate(self.duplex):
            self._states.append(_LinkAttackState(self, index, "fwd", duplex.forward))
            self._states.append(_LinkAttackState(self, index, "rev", duplex.reverse))
        for event in self.plan.sorted_events():
            self.engine.schedule_at(max(event.time, self.engine.now), self._apply, event)
        return self

    # -- application ------------------------------------------------------------

    def states_for(self, event: AttackEvent) -> List[_LinkAttackState]:
        """The link states an event touches, in (channel, fwd-before-rev) order."""
        if event.channel is None:
            targets = list(range(len(self.duplex)))
        else:
            targets = [event.channel]
        states: List[_LinkAttackState] = []
        for index in targets:
            if event.direction in ("fwd", "both"):
                states.append(self._states[2 * index])
            if event.direction in ("rev", "both"):
                states.append(self._states[2 * index + 1])
        return states

    def jam_channel(self, channel: int, direction: str = "both") -> None:
        """Down a channel on the adversary's behalf (idempotent per link)."""
        duplex = self.duplex[channel]
        if direction in ("fwd", "both"):
            duplex.forward.link_down()
        if direction in ("rev", "both"):
            duplex.reverse.link_down()
        self.stats.jams += 1

    def unjam_channel(self, channel: int, direction: str = "both") -> None:
        """Release a jammed channel."""
        duplex = self.duplex[channel]
        if direction in ("fwd", "both"):
            duplex.forward.link_up()
        if direction in ("rev", "both"):
            duplex.reverse.link_up()
        self.stats.unjams += 1

    def _apply(self, event: AttackEvent) -> None:
        self.log.append((self.engine.now, event))
        if self.tracer is not None:
            self.tracer.event(
                "attack_applied",
                action=event.action,
                channel=event.channel,
                direction=event.direction,
            )
        action = event.action
        params = event.params
        if action == "jam":
            channels = (
                list(range(len(self.duplex))) if event.channel is None else [event.channel]
            )
            for channel in channels:
                self.jam_channel(channel, event.direction)
            return
        if action == "unjam":
            channels = (
                list(range(len(self.duplex))) if event.channel is None else [event.channel]
            )
            for channel in channels:
                self.unjam_channel(channel, event.direction)
            return
        if action == "adaptive_start":
            self.adaptive = AdaptiveAttacker(
                self,
                budget=params["budget"],
                period=params["period"],
                width=params["width"],
                jam_for=params["jam_for"],
                direction=event.direction,
            )
            self.adaptive.start()
            return
        if action == "adaptive_stop":
            if self.adaptive is not None:
                self.adaptive.stop()
            return
        if action == "target_start":
            self.targeter = TargetedCorruptor(
                self,
                period=params["period"],
                width=params["width"],
                direction="fwd" if event.direction == "both" else event.direction,
            )
            return
        if action == "target_stop":
            self.targeter = None
            return
        for state in self.states_for(event):
            if action == "corrupt_start":
                state.corrupt_rate = params["rate"]
                state.corrupt_mode = params.get("mode", "flip")
            elif action == "corrupt_stop":
                state.corrupt_rate = 0.0
            elif action == "forge_start":
                state.start_forge(params["rate"], params.get("mode", "tracking"))
            elif action == "forge_stop":
                state.stop_forge()
            elif action == "replay_start":
                state.start_replay(params["rate"], params.get("tamper", False))
            elif action == "replay_stop":
                state.stop_replay()
            elif action == "hold_start":
                state.holding = True
                state.hold_for = params["hold"]
                state.hold_batch = params.get("batch", 4)
            elif action == "hold_stop":
                state.holding = False
                state.flush_held()

    # -- reporting --------------------------------------------------------------

    def summary(self) -> dict:
        """Applied-event counts, firing window, and the attack stat ledger."""
        counts = {}
        for _, event in self.log:
            counts[event.action] = counts.get(event.action, 0) + 1
        return {
            "applied": len(self.log),
            "by_action": counts,
            "first_at": self.log[0][0] if self.log else None,
            "last_at": self.log[-1][0] if self.log else None,
            "stats": self.stats.as_dict(),
        }
