"""The active adversary: attack plans, primitives and strategic attackers.

Where :mod:`repro.adversary.eavesdropper` only *reads* the channels, this
package *writes* to them: share corruption beyond random bit flips,
forged-share injection with valid wire framing, capture-and-replay of
previously observed packets, hold-based reorder/delay, jamming, and two
strategic attackers (the budget-bounded adaptive low-risk partitioner and
the targeted symbol corruptor).  Everything is declarative and
deterministic, mirroring :mod:`repro.netsim.faults`:

* :class:`AttackPlan` / :class:`AttackEvent` -- the timeline (pure data);
* :class:`AttackInjector` -- arms a plan against live links through the
  ``attack_tap``/``inject`` hooks on :class:`repro.netsim.link.Link`;
* :data:`CANONICAL_ATTACKS` / :func:`canonical_attack` -- the named
  scenario catalog shared by the property suite, the sweep grids,
  ``repro attack`` and ``bench_adversary.py``;
* :func:`run_under_attack` -- the seeded measurement harness whose rows
  carry the integrity/κ-floor/determinism evidence.

See docs/ADVERSARY.md for the threat model and the guarantees the
property suite locks down.
"""

from repro.adversary.active.engine import AttackInjector, AttackStats
from repro.adversary.active.harness import default_channels, run_under_attack
from repro.adversary.active.plan import (
    ACTIONS,
    AttackEvent,
    AttackPlan,
    CORRUPT_MODES,
    FORGE_MODES,
)
from repro.adversary.active.primitives import (
    corrupt_any_packet,
    corrupt_share_packet,
    forge_share_packet,
    is_share,
    share_body_offset,
)
from repro.adversary.active.scenarios import (
    CANONICAL_ATTACKS,
    canonical_attack,
    scenario_corruption_storm,
    scenario_forged_injection,
    scenario_replay_flood,
    scenario_targeted_corruption,
    scenario_targeted_partition,
)
from repro.adversary.active.strategies import AdaptiveAttacker, TargetedCorruptor

__all__ = [
    "ACTIONS",
    "AdaptiveAttacker",
    "AttackEvent",
    "AttackInjector",
    "AttackPlan",
    "AttackStats",
    "CANONICAL_ATTACKS",
    "CORRUPT_MODES",
    "FORGE_MODES",
    "TargetedCorruptor",
    "canonical_attack",
    "corrupt_any_packet",
    "corrupt_share_packet",
    "default_channels",
    "forge_share_packet",
    "is_share",
    "run_under_attack",
    "scenario_corruption_storm",
    "scenario_forged_injection",
    "scenario_replay_flood",
    "scenario_targeted_corruption",
    "scenario_targeted_partition",
    "share_body_offset",
]
