"""Strategic attackers: adversaries with a policy, not just a dice roll.

Two attackers that exploit *model knowledge* rather than raw channel
access:

* :class:`AdaptiveAttacker` -- knows the per-channel compromise risks the
  planner's schedule is built on, and spends a bounded jam budget on the
  *lowest*-risk channels.  Downing the channels the planner trusts most
  is the worst-case move against a risk-weighted schedule: surviving
  traffic is forced onto the riskier channels, and a resilience layer
  holding a κ floor must either replan around the partition or pause
  admission (both detectable; see the κ-floor property suite).
* :class:`TargetedCorruptor` -- concentrates corruption on every
  ``period``-th symbol, rewriting its shares on ``width`` channels at
  once.  Spread across symbols the same corruption volume stays within
  ``max_correctable_errors`` and robust reconstruction shrugs it off;
  concentrated, ``width > e`` corrupted shares of *one* symbol exceed the
  unique-decoding radius and force a (detected, counted) reconstruction
  failure -- never a silently wrong delivery, because independently
  random rewrites cannot imitate a consistent degree-(k-1) polynomial.

Both are driven by the :class:`~repro.adversary.active.engine.AttackInjector`
via ``adaptive_start``/``target_start`` plan events and share its
determinism rules (engine-scheduled ticks, named rng streams only).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.netsim.packet import Datagram


class AdaptiveAttacker:
    """Budget-bounded jammer that partitions the lowest-risk channels.

    Every ``period`` it ranks channels by ``(risk, index)`` ascending and
    jams the first ``width`` that are currently up, spending one budget
    unit per jam; each jam heals after ``jam_for``.  Stops when the
    budget is exhausted or ``adaptive_stop`` fires (in-flight unjams
    still heal -- the adversary walking away does not repair the damage
    early, nor leave permanent damage).
    """

    def __init__(
        self,
        injector,
        budget: int,
        period: float,
        width: int,
        jam_for: float,
        direction: str = "both",
    ):
        self.injector = injector
        self.budget = budget
        self.period = period
        self.width = width
        self.jam_for = jam_for
        self.direction = direction
        self._gen = 0

    def start(self) -> None:
        self._gen += 1
        self.injector.engine.schedule(self.period, self._tick, self._gen)

    def stop(self) -> None:
        self._gen += 1

    def _ranked_channels(self) -> list:
        """Channel indices, least risky first (index breaks ties)."""
        risks = self.injector.risks
        return sorted(range(len(risks)), key=lambda index: (risks[index], index))

    def _is_up(self, channel: int) -> bool:
        duplex = self.injector.duplex[channel]
        if self.direction == "fwd":
            return duplex.forward.up
        if self.direction == "rev":
            return duplex.reverse.up
        return duplex.forward.up or duplex.reverse.up

    def _tick(self, gen: int) -> None:
        if gen != self._gen or self.budget <= 0:
            return
        jammed = 0
        for channel in self._ranked_channels():
            if jammed >= self.width or self.budget <= 0:
                break
            if not self._is_up(channel):
                continue
            self.injector.jam_channel(channel, self.direction)
            self.injector.stats.adaptive_jams += 1
            self.budget -= 1
            jammed += 1
            self.injector.engine.schedule(
                self.jam_for, self.injector.unjam_channel, channel, self.direction
            )
        if self.budget > 0:
            self.injector.engine.schedule(self.period, self._tick, gen)


class TargetedCorruptor:
    """Concentrates share corruption on every ``period``-th symbol.

    Watches share deliveries (via the injector's on-path taps), assigns
    each distinct ``(flow, seq)`` an arrival ordinal, and marks every
    ``period``-th symbol as targeted: all of its shares delivered on the
    ``width`` lowest-indexed channels are rewritten with attacker
    randomness.  Forged packets (no sender metadata) are never targeted
    -- the adversary does not corrupt its own injections.
    """

    def __init__(self, injector, period: int, width: int, direction: str = "fwd"):
        self.injector = injector
        self.period = period
        self.width = width
        self.direction = direction
        self._ordinals: Dict[Tuple[int, int], int] = {}
        self._next_ordinal = 0

    def should_corrupt(self, channel: int, datagram: Datagram) -> bool:
        """Observe one delivery; True when its share should be rewritten."""
        seq = datagram.meta.get("seq")
        if seq is None or "forged" in datagram.meta:
            return False
        key = (datagram.meta.get("flow", 0), seq)
        ordinal = self._ordinals.get(key)
        if ordinal is None:
            ordinal = self._next_ordinal
            self._next_ordinal += 1
            self._ordinals[key] = ordinal
            if ordinal % self.period == 0:
                self.injector.stats.targeted_symbols += 1
        return ordinal % self.period == 0 and channel < self.width
