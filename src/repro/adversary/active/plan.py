"""Declarative, deterministic *active-adversary* attack timelines.

The passive eavesdropper of :mod:`repro.adversary.eavesdropper` only
reads; the paper's robustness machinery (robust reconstruction, channel
quarantine, repair) exists because real multichannel adversaries also
*write*: they corrupt shares in flight, inject forged shares with valid
wire framing, capture and replay previously observed packets, delay and
reorder traffic, and selectively partition channels.  This module models
such behaviour as data, exactly like :mod:`repro.netsim.faults` models
benign failures:

* an :class:`AttackEvent` is one timed mutation of the adversary's
  posture on one (or every) channel -- start/stop a corruption regime,
  a forgery campaign, a replay campaign, a hold-and-reorder window, a
  jam, or one of the *strategic* attackers (the budget-bounded adaptive
  low-risk partitioner and the targeted symbol corruptor);
* an :class:`AttackPlan` is an ordered timeline of events, built fluently
  or parsed from a JSON spec (the CLI's ``repro attack``);
* an :class:`~repro.adversary.active.engine.AttackInjector` schedules the
  plan on the event engine and applies each event through per-link attack
  state, recording every applied event so reports can attribute damage.

Determinism: event timing comes solely from the engine and every random
draw (corruption positions, forged payloads, replay picks) flows through
a named per-link rng stream, so two runs with the same root seed produce
byte-identical traces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

#: Every recognised attack action.
ACTIONS = (
    "corrupt_start",
    "corrupt_stop",
    "forge_start",
    "forge_stop",
    "replay_start",
    "replay_stop",
    "hold_start",
    "hold_stop",
    "jam",
    "unjam",
    "adaptive_start",
    "adaptive_stop",
    "target_start",
    "target_stop",
)

#: Which direction(s) of a duplex channel an event touches.
DIRECTIONS = ("fwd", "rev", "both")

#: Corruption modes: flip one share-body byte, rewrite the body with
#: attacker randomness, or zero it.  All three preserve the wire framing,
#: so the receiver decodes a *valid but wrong* share and only robust
#: reconstruction can catch it.
CORRUPT_MODES = ("flip", "rewrite", "zero")

#: Forgery modes: "tracking" forges shares for the symbol most recently
#: observed in flight (colliding with live reassembly groups); "blind"
#: forges shares for near-future sequence numbers (flooding the table).
FORGE_MODES = ("tracking", "blind")

#: Required / allowed parameter keys per action.
_PARAM_KEYS: Dict[str, "tuple[str, ...]"] = {
    "corrupt_start": ("rate", "mode"),
    "corrupt_stop": (),
    "forge_start": ("rate", "mode"),
    "forge_stop": (),
    "replay_start": ("rate", "tamper"),
    "replay_stop": (),
    "hold_start": ("hold", "batch"),
    "hold_stop": (),
    "jam": (),
    "unjam": (),
    "adaptive_start": ("budget", "period", "width", "jam_for"),
    "adaptive_stop": (),
    "target_start": ("period", "width"),
    "target_stop": (),
}


def _require_positive(params: Dict[str, Any], action: str, key: str) -> float:
    if key not in params:
        raise ValueError(f"{action} needs a {key!r} parameter")
    value = params[key]
    if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
        raise ValueError(f"{action} {key} must be positive, got {value!r}")
    return float(value)


def _require_positive_int(params: Dict[str, Any], action: str, key: str) -> int:
    value = _require_positive(params, action, key)
    if value != int(value):
        raise ValueError(f"{action} {key} must be an integer, got {value!r}")
    return int(value)


@dataclass
class AttackEvent:
    """One timed attack action applied to one channel (or all of them).

    Attributes:
        time: absolute simulated time the action fires.
        action: one of :data:`ACTIONS`.
        channel: model channel index, or ``None`` for every channel (the
            strategic actions ``adaptive_start``/``target_start`` default
            to every channel and narrow themselves via ``width``).
        direction: "fwd", "rev" or "both" duplex directions.
        params: action parameters (see :data:`_PARAM_KEYS`); e.g.
            ``{"rate": 0.5, "mode": "flip"}`` for ``corrupt_start`` or
            ``{"budget": 8, "period": 4.0, "width": 2, "jam_for": 2.0}``
            for ``adaptive_start``.
    """

    time: float
    action: str
    channel: Optional[int] = None
    direction: str = "both"
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"attack time must be nonnegative, got {self.time}")
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown attack action {self.action!r}; expected one of {ACTIONS}"
            )
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"unknown direction {self.direction!r}; expected one of {DIRECTIONS}"
            )
        if self.channel is not None and self.channel < 0:
            raise ValueError(f"channel index must be nonnegative, got {self.channel}")
        allowed = _PARAM_KEYS[self.action]
        unknown = set(self.params) - set(allowed)
        if unknown:
            raise ValueError(
                f"{self.action} does not take parameters {sorted(unknown)}; "
                f"allowed: {list(allowed)}"
            )
        if self.action == "corrupt_start":
            if "rate" not in self.params:
                raise ValueError("corrupt_start needs a 'rate' parameter")
            rate = self.params["rate"]
            if not 0.0 < rate <= 1.0:
                raise ValueError(f"corrupt rate must be in (0, 1], got {rate}")
            mode = self.params.get("mode", "flip")
            if mode not in CORRUPT_MODES:
                raise ValueError(
                    f"unknown corrupt mode {mode!r}; expected one of {CORRUPT_MODES}"
                )
        if self.action == "forge_start":
            _require_positive(self.params, self.action, "rate")
            mode = self.params.get("mode", "tracking")
            if mode not in FORGE_MODES:
                raise ValueError(
                    f"unknown forge mode {mode!r}; expected one of {FORGE_MODES}"
                )
        if self.action == "replay_start":
            _require_positive(self.params, self.action, "rate")
            tamper = self.params.get("tamper", False)
            if not isinstance(tamper, bool):
                raise ValueError(f"replay tamper must be a bool, got {tamper!r}")
        if self.action == "hold_start":
            _require_positive(self.params, self.action, "hold")
            if "batch" in self.params:
                _require_positive_int(self.params, self.action, "batch")
        if self.action == "adaptive_start":
            _require_positive_int(self.params, self.action, "budget")
            _require_positive(self.params, self.action, "period")
            _require_positive_int(self.params, self.action, "width")
            _require_positive(self.params, self.action, "jam_for")
        if self.action == "target_start":
            _require_positive_int(self.params, self.action, "period")
            _require_positive_int(self.params, self.action, "width")

    def to_spec(self) -> dict:
        """The JSON-friendly dict form (inverse of :meth:`AttackPlan.from_spec`)."""
        spec: dict = {"time": self.time, "action": self.action}
        if self.channel is not None:
            spec["channel"] = self.channel
        if self.direction != "both":
            spec["direction"] = self.direction
        spec.update(self.params)
        return spec


class AttackPlan:
    """A seeded-run attack timeline: an ordered collection of attack events.

    Build fluently (every builder returns ``self``)::

        plan = (AttackPlan()
                .corrupt(5.0, rate=0.5, mode="flip", channel=0)
                .end_corrupt(15.0, channel=0)
                .replay(10.0, rate=4.0, tamper=True)
                .end_replay(20.0)
                .adaptive(5.0, budget=8, period=4.0, width=2, jam_for=2.0)
                .end_adaptive(25.0))

    or parse the equivalent JSON spec with :meth:`from_json` /
    :meth:`from_spec`.  The plan itself is pure data; nothing happens
    until an :class:`~repro.adversary.active.engine.AttackInjector` arms
    it on an engine.
    """

    def __init__(self, events: Optional[Sequence[AttackEvent]] = None):
        self.events: List[AttackEvent] = list(events or [])

    # -- construction ----------------------------------------------------------

    def add(self, event: AttackEvent) -> "AttackPlan":
        """Append one event (kept in insertion order; sorted when armed)."""
        self.events.append(event)
        return self

    def corrupt(
        self,
        time: float,
        rate: float,
        mode: str = "flip",
        channel: Optional[int] = None,
        direction: str = "fwd",
    ) -> "AttackPlan":
        """Start corrupting delivered share bodies with probability ``rate``."""
        return self.add(
            AttackEvent(time, "corrupt_start", channel, direction, {"rate": rate, "mode": mode})
        )

    def end_corrupt(
        self, time: float, channel: Optional[int] = None, direction: str = "fwd"
    ) -> "AttackPlan":
        """Stop the corruption regime."""
        return self.add(AttackEvent(time, "corrupt_stop", channel, direction))

    def forge(
        self,
        time: float,
        rate: float,
        mode: str = "tracking",
        channel: Optional[int] = None,
        direction: str = "fwd",
    ) -> "AttackPlan":
        """Start injecting ``rate`` forged shares per unit time."""
        return self.add(
            AttackEvent(time, "forge_start", channel, direction, {"rate": rate, "mode": mode})
        )

    def end_forge(
        self, time: float, channel: Optional[int] = None, direction: str = "fwd"
    ) -> "AttackPlan":
        """Stop the forgery campaign."""
        return self.add(AttackEvent(time, "forge_stop", channel, direction))

    def replay(
        self,
        time: float,
        rate: float,
        tamper: bool = False,
        channel: Optional[int] = None,
        direction: str = "both",
    ) -> "AttackPlan":
        """Start re-injecting ``rate`` captured packets per unit time.

        With ``tamper`` each replayed copy has one byte flipped, so a
        replay colliding with a live reassembly slot carries a mismatched
        payload (the receiver's replay defense counts these).
        """
        return self.add(
            AttackEvent(time, "replay_start", channel, direction, {"rate": rate, "tamper": tamper})
        )

    def end_replay(
        self, time: float, channel: Optional[int] = None, direction: str = "both"
    ) -> "AttackPlan":
        """Stop the replay campaign."""
        return self.add(AttackEvent(time, "replay_stop", channel, direction))

    def hold(
        self,
        time: float,
        hold: float,
        batch: int = 4,
        channel: Optional[int] = None,
        direction: str = "fwd",
    ) -> "AttackPlan":
        """Start holding delivered packets for ``hold``, releasing batches reversed.

        Models an on-path adversary who delays and reorders traffic
        without dropping it.
        """
        return self.add(
            AttackEvent(time, "hold_start", channel, direction, {"hold": hold, "batch": batch})
        )

    def end_hold(
        self, time: float, channel: Optional[int] = None, direction: str = "fwd"
    ) -> "AttackPlan":
        """Stop holding; any packets still held are flushed (reversed) at once."""
        return self.add(AttackEvent(time, "hold_stop", channel, direction))

    def jam(
        self, time: float, channel: Optional[int] = None, direction: str = "both"
    ) -> "AttackPlan":
        """Take a channel down, attributed to the adversary."""
        return self.add(AttackEvent(time, "jam", channel, direction))

    def unjam(
        self, time: float, channel: Optional[int] = None, direction: str = "both"
    ) -> "AttackPlan":
        """Release a jammed channel."""
        return self.add(AttackEvent(time, "unjam", channel, direction))

    def adaptive(
        self,
        time: float,
        budget: int,
        period: float,
        width: int,
        jam_for: float,
        direction: str = "both",
    ) -> "AttackPlan":
        """Start the budget-bounded adaptive low-risk partitioner.

        Every ``period`` the attacker ranks channels by risk (ascending)
        and jams the ``width`` lowest-risk ones for ``jam_for``, spending
        one budget unit per jam, until ``budget`` is exhausted or
        :meth:`end_adaptive` fires.  Degrading exactly the channels the
        planner trusts most forces the schedule toward riskier channels.
        """
        return self.add(
            AttackEvent(
                time, "adaptive_start", None, direction,
                {"budget": budget, "period": period, "width": width, "jam_for": jam_for},
            )
        )

    def end_adaptive(self, time: float) -> "AttackPlan":
        """Stop the adaptive attacker (scheduled unjams still fire)."""
        return self.add(AttackEvent(time, "adaptive_stop", None))

    def target(
        self,
        time: float,
        period: int,
        width: int,
        direction: str = "fwd",
    ) -> "AttackPlan":
        """Start the targeted corruptor.

        Every ``period``-th distinct symbol observed at delivery is marked
        *targeted*: all of its shares arriving on the ``width``
        lowest-indexed channels are rewritten, concentrating corruption on
        one symbol to overwhelm ``max_correctable_errors``.
        """
        return self.add(
            AttackEvent(time, "target_start", None, direction, {"period": period, "width": width})
        )

    def end_target(self, time: float) -> "AttackPlan":
        """Stop the targeted corruptor."""
        return self.add(AttackEvent(time, "target_stop", None))

    # -- spec (de)serialisation -------------------------------------------------

    @classmethod
    def from_spec(cls, spec: Sequence[dict]) -> "AttackPlan":
        """Build a plan from a list of dicts (``time``/``action``/``channel``/
        ``direction`` keys; every other key becomes an action parameter)."""
        events = []
        for entry in spec:
            entry = dict(entry)
            time = entry.pop("time")
            action = entry.pop("action")
            channel = entry.pop("channel", None)
            direction = entry.pop("direction", "both")
            events.append(AttackEvent(time, action, channel, direction, entry))
        return cls(events)

    @classmethod
    def from_json(cls, text: str) -> "AttackPlan":
        """Parse the JSON form of :meth:`to_spec`."""
        return cls.from_spec(json.loads(text))

    def to_spec(self) -> List[dict]:
        """The JSON-friendly list-of-dicts form."""
        return [event.to_spec() for event in self.events]

    def to_json(self) -> str:
        return json.dumps(self.to_spec(), indent=2)

    # -- introspection ----------------------------------------------------------

    def sorted_events(self) -> List[AttackEvent]:
        """Events in firing order (stable: ties keep insertion order)."""
        return sorted(self.events, key=lambda e: e.time)

    def end_time(self) -> float:
        """Time of the last event (0.0 for an empty plan)."""
        return max((e.time for e in self.events), default=0.0)

    def has_action(self, *actions: str) -> bool:
        """Whether the plan contains any of the given actions."""
        wanted = set(actions)
        return any(event.action in wanted for event in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[AttackEvent]:
        return iter(self.events)
