"""Canonical attack scenarios: the named adversaries every robustness
claim is measured against.

Mirrors :data:`repro.netsim.faults.CANONICAL_SCENARIOS`: each factory
takes ``(start, stop, **overrides)`` in simulator unit times and returns
an :class:`~repro.adversary.active.plan.AttackPlan`.  The property suite
(tests/test_attack_properties.py), the sweep grids
(:mod:`repro.experiments.attack`), ``repro attack`` and
``bench_adversary.py`` all draw from this one catalog, so "under every
canonical attack scenario" means the same thing everywhere.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.adversary.active.plan import AttackPlan


def scenario_corruption_storm(
    start: float,
    stop: float,
    channel: Optional[int] = None,
    rate: float = 0.5,
    mode: str = "flip",
) -> AttackPlan:
    """Every share body on the attacked channel(s) is corrupted with
    probability ``rate`` -- framing intact, so only robust reconstruction
    can catch it."""
    return (
        AttackPlan()
        .corrupt(start, rate=rate, mode=mode, channel=channel)
        .end_corrupt(stop, channel=channel)
    )


def scenario_replay_flood(
    start: float,
    stop: float,
    channel: Optional[int] = None,
    rate: float = 4.0,
    tamper: bool = True,
) -> AttackPlan:
    """Captured packets are re-injected at ``rate`` per unit time; with
    ``tamper`` each copy is body-flipped so collisions with live slots
    carry mismatched payloads (the receiver's replay defense counts
    them)."""
    return (
        AttackPlan()
        .replay(start, rate=rate, tamper=tamper, channel=channel)
        .end_replay(stop, channel=channel)
    )


def scenario_forged_injection(
    start: float,
    stop: float,
    channel: Optional[int] = None,
    rate: float = 4.0,
    mode: str = "tracking",
) -> AttackPlan:
    """Well-framed forged shares are injected at ``rate`` per unit time,
    modelled on observed traffic (``tracking`` collides with live
    symbols; ``blind`` floods the reassembly table with phantoms)."""
    return (
        AttackPlan()
        .forge(start, rate=rate, mode=mode, channel=channel)
        .end_forge(stop, channel=channel)
    )


def scenario_targeted_partition(
    start: float,
    stop: float,
    budget: int = 8,
    period: float = 4.0,
    width: int = 2,
    jam_for: float = 2.0,
) -> AttackPlan:
    """The adaptive attacker spends ``budget`` jams on the lowest-risk
    channels, ``width`` at a time, forcing the planner toward riskier
    schedules."""
    return (
        AttackPlan()
        .adaptive(start, budget=budget, period=period, width=width, jam_for=jam_for)
        .end_adaptive(stop)
    )


def scenario_targeted_corruption(
    start: float,
    stop: float,
    period: int = 3,
    width: int = 2,
) -> AttackPlan:
    """The targeted corruptor rewrites every ``period``-th symbol's shares
    on ``width`` channels at once, concentrating damage past the
    correction radius of a single symbol."""
    return AttackPlan().target(start, period=period, width=width).end_target(stop)


#: Name -> factory for the canonical attack scenarios; each factory takes
#: ``(start, stop, **overrides)`` and returns an :class:`AttackPlan`.
CANONICAL_ATTACKS: Dict[str, Callable[..., AttackPlan]] = {
    "corruption_storm": scenario_corruption_storm,
    "replay_flood": scenario_replay_flood,
    "forged_injection": scenario_forged_injection,
    "targeted_partition": scenario_targeted_partition,
    "targeted_corruption": scenario_targeted_corruption,
}


def canonical_attack(name: str, start: float, stop: float, **overrides) -> AttackPlan:
    """Build one of the canonical attack scenarios by name."""
    try:
        factory = CANONICAL_ATTACKS[name]
    except KeyError:
        raise ValueError(
            f"unknown attack scenario {name!r}; expected one of {sorted(CANONICAL_ATTACKS)}"
        ) from None
    return factory(start, stop, **overrides)
