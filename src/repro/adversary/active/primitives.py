"""Byte-level attack primitives on wire packets.

Pure functions: each takes packet bytes plus an rng stream and returns new
packet bytes (or ``None`` when the packet cannot be attacked in the
requested way).  All randomness flows through the caller's named stream,
so the same seed replays the same attack byte-for-byte.

The share primitives deliberately preserve the 16/20-byte wire framing --
a corrupted share still *decodes* (valid magic, version, header fields),
it just carries wrong share material.  That is the point: framing-level
garbage is caught for free by :func:`~repro.protocol.wire.decode_share`
(``decode_errors``), whereas a well-framed wrong share survives all the
way to reconstruction and only the Reed-Solomon redundancy exploited by
:func:`~repro.sharing.robust.robust_reconstruct` can expose it.
"""

from __future__ import annotations

from typing import Optional

from repro.protocol.wire import (
    FLAG_AUTH,
    FLAG_FLOW,
    FLOW_HEADER_SIZE,
    HEADER_SIZE,
    SCHEME_IDS,
    SHARE_MAGIC,
    TAG_SIZE,
    WireFormatError,
    decode_share,
    encode_share,
    is_control,
)
from repro.sharing.base import Share


def is_share(packet: bytes) -> bool:
    """Whether ``packet`` starts with the share magic."""
    return len(packet) >= 2 and int.from_bytes(packet[:2], "big") == SHARE_MAGIC


def share_body_offset(packet: bytes) -> Optional[int]:
    """Offset of the share payload inside a share packet.

    Returns ``None`` when the packet is not a well-formed share carrying
    at least one payload byte (nothing to corrupt).
    """
    if not is_share(packet) or len(packet) < HEADER_SIZE:
        return None
    version = packet[2]
    flags = packet[15]
    offset = HEADER_SIZE
    if version >= 2 and flags & FLAG_FLOW:
        offset = FLOW_HEADER_SIZE
    if version >= 3 and flags & FLAG_AUTH:
        # Skip the MAC so corruption hits the true share body -- flipping
        # tag bytes would be a strictly weaker attack (the share itself
        # stays consistent; only verification fails).
        offset += TAG_SIZE
    if len(packet) <= offset:
        return None
    return offset


def corrupt_share_packet(packet: bytes, rng, mode: str = "flip") -> Optional[bytes]:
    """Corrupt the share *body* of a share packet, preserving the framing.

    Modes:
        ``flip``    XOR one body byte with a nonzero mask (minimal damage,
                    still enough to make the share inconsistent).
        ``rewrite`` Replace the whole body with attacker randomness.
        ``zero``    Zero the whole body (a structured, low-entropy lie).

    Returns the corrupted packet, or ``None`` for non-share packets.
    """
    offset = share_body_offset(packet)
    if offset is None:
        return None
    body = bytearray(packet[offset:])
    if mode == "flip":
        position = int(rng.integers(0, len(body)))
        mask = int(rng.integers(1, 256))
        body[position] ^= mask
    elif mode == "rewrite":
        body[:] = rng.bytes(len(body))
    elif mode == "zero":
        body[:] = bytes(len(body))
    else:
        raise ValueError(f"unknown corrupt mode {mode!r}")
    return packet[:offset] + bytes(body)


def corrupt_any_packet(packet: bytes, rng) -> Optional[bytes]:
    """Flip one byte anywhere in the packet (framing included).

    Used against control traffic, where breaking the framing *is* the
    attack (a mangled NACK or probe must be rejected, never half-acted
    on).  Returns ``None`` for empty packets.
    """
    if not packet:
        return None
    mutated = bytearray(packet)
    position = int(rng.integers(0, len(mutated)))
    mask = int(rng.integers(1, 256))
    mutated[position] ^= mask
    return bytes(mutated)


def forge_share_packet(
    template: bytes,
    rng,
    seq: Optional[int] = None,
    index: Optional[int] = None,
) -> Optional[bytes]:
    """Build a well-framed forged share modelled on an observed packet.

    The forgery copies the template's geometry (scheme, k, m, flow, body
    length) but carries an attacker-chosen sequence number and share
    index with a random body -- valid framing end to end, so it passes
    :func:`decode_share` and lands in the receiver's reassembly table.
    An authenticated template's tag is copied verbatim onto the forgery
    (the strongest move available without the key: the frame is fully
    well-formed, and only MAC verification can reject it -- the tag binds
    the original slot and body, so it cannot verify for the forged ones).

    Returns ``None`` when the template is not a decodable share of a
    known scheme (the attacker cannot imitate what it cannot parse).
    """
    if is_control(template):
        return None
    try:
        header, share = decode_share(template)
    except WireFormatError:
        return None
    if header.scheme_name not in SCHEME_IDS:
        return None
    if seq is None:
        seq = header.seq
    if index is None:
        index = int(rng.integers(1, header.m + 1))
    forged = Share(index=index, data=rng.bytes(len(share.data)), k=header.k, m=header.m)
    try:
        return encode_share(
            seq, forged, header.scheme_name, flow=header.flow, tag=header.tag
        )
    except ValueError:
        return None
