"""Vectorised Monte-Carlo estimators for the model's closed forms.

These estimators sample the protocol *model* directly -- draw (k, M) from
the schedule, draw per-channel observation/loss events, compute arrival
order statistics -- without any of the protocol or simulator machinery.
They serve as an independent check that the subset and schedule formulas
of Sec. IV-A are correct, and power the adversary-simulation example.

Tight estimates need many independent trials, so the
``estimate_*_properties_sweep`` variants split the sample budget into
independently-seeded chunks enumerated through a
:class:`~repro.sweep.SweepSpec` and executed by
:class:`~repro.sweep.SweepRunner` -- the same orchestration the figure
sweeps use, so chunks fan out over worker processes and are cacheable,
and every chunk's seed derives from its identity rather than from worker
order (the result is independent of ``jobs``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


import numpy as np

from repro.core.channel import ChannelSet
from repro.core.schedule import ShareSchedule
from repro.sweep import ResultCache, SweepRunner, SweepSpec, values


@dataclass(frozen=True)
class PropertyEstimates:
    """Monte-Carlo estimates of the three per-symbol properties.

    ``delay`` is conditioned on the symbol being delivered (as in the
    model); it is NaN when every sampled symbol was lost.
    """

    risk: float
    loss: float
    delay: float
    samples: int


def estimate_subset_properties(
    channels: ChannelSet,
    k: int,
    subset: Iterable[int],
    rng: np.random.Generator,
    samples: int = 100_000,
) -> PropertyEstimates:
    """Estimate z(k, M), l(k, M) and d(k, M) by direct simulation.

    For each trial: every channel of M independently observes its share
    with probability z_i and loses it with probability l_i; the symbol is
    compromised when >= k observations occur, lost when < k shares
    survive, and otherwise delivered at the k-th smallest surviving delay.
    """
    members = sorted(channels.validate_subset(subset))
    if not 1 <= k <= len(members):
        raise ValueError(f"threshold k={k} invalid for |M|={len(members)}")
    risks = np.array([channels[i].risk for i in members])
    losses = np.array([channels[i].loss for i in members])
    delays = np.array([channels[i].delay for i in members])

    observed = rng.random((samples, len(members))) < risks
    compromised = observed.sum(axis=1) >= k

    survived = rng.random((samples, len(members))) >= losses
    arrived = survived.sum(axis=1)
    lost = arrived < k

    # Delay: k-th smallest delay among surviving shares, delivered rows only.
    delay_matrix = np.where(survived, delays, np.inf)
    kth = np.sort(delay_matrix, axis=1)[:, k - 1]
    delivered = ~lost
    mean_delay = float(kth[delivered].mean()) if delivered.any() else float("nan")

    return PropertyEstimates(
        risk=float(compromised.mean()),
        loss=float(lost.mean()),
        delay=mean_delay,
        samples=samples,
    )


def estimate_schedule_properties(
    schedule: ShareSchedule,
    rng: np.random.Generator,
    samples: int = 100_000,
) -> PropertyEstimates:
    """Estimate Z(p), L(p) and D(p) by sampling pairs from the schedule.

    Stratified by schedule atom: each (k, M) pair receives a share of the
    sample budget proportional to its probability, and the per-atom
    estimates are combined with the exact weights.  This removes the
    sampling noise of the categorical draw itself.
    """
    total_risk = 0.0
    total_loss = 0.0
    total_delay = 0.0
    delay_valid = True
    used = 0
    for (k, members), probability in schedule.support():
        atom_samples = max(1000, int(round(samples * probability)))
        estimate = estimate_subset_properties(
            schedule.channels, k, members, rng, samples=atom_samples
        )
        used += estimate.samples
        total_risk += probability * estimate.risk
        total_loss += probability * estimate.loss
        # The paper's D(p) weights each atom's (delivery-conditioned)
        # d(k, M) by plain p(k, M).
        if np.isnan(estimate.delay):
            delay_valid = False
        else:
            total_delay += probability * estimate.delay
    return PropertyEstimates(
        risk=total_risk,
        loss=total_loss,
        delay=total_delay if delay_valid else float("nan"),
        samples=used,
    )


# -- sweep-orchestrated estimation ----------------------------------------------


def _split_samples(samples: int, chunks: int) -> List[int]:
    """Split a sample budget into ``chunks`` near-equal nonzero parts."""
    if samples < 1 or chunks < 1:
        raise ValueError(f"need samples >= 1 and chunks >= 1, got {samples}, {chunks}")
    chunks = min(chunks, samples)
    base, extra = divmod(samples, chunks)
    return [base + (1 if i < extra else 0) for i in range(chunks)]


def _channel_vectors(channels: ChannelSet) -> Dict[str, List[float]]:
    """A ChannelSet as JSON-serialisable vectors (the sweep-param form)."""
    return {
        "risks": [float(v) for v in channels.risks],
        "losses": [float(v) for v in channels.losses],
        "delays": [float(v) for v in channels.delays],
        "rates": [float(v) for v in channels.rates],
    }


def mc_chunk_point(params: Dict, seed: int) -> Dict[str, float]:
    """One independently-seeded Monte-Carlo chunk (picklable point fn).

    Rebuilds the channel set from vectors, seeds a fresh generator from the
    point's derived seed, and returns the chunk's estimates as a plain
    dict (cache- and pool-friendly).
    """
    channels = ChannelSet.from_vectors(
        risks=params["risks"],
        losses=params["losses"],
        delays=params["delays"],
        rates=params["rates"],
    )
    estimate = estimate_subset_properties(
        channels,
        int(params["k"]),
        [int(i) for i in params["subset"]],
        np.random.default_rng(seed),
        samples=int(params["samples"]),
    )
    return {
        "risk": estimate.risk,
        "loss": estimate.loss,
        "delay": estimate.delay,
        "samples": estimate.samples,
    }


def _pool_chunks(chunk_values: Iterable[Dict[str, float]]) -> PropertyEstimates:
    """Exactly pool per-chunk estimates into one.

    Risk and loss are means over trials, so they pool weighted by chunk
    size.  Delay is conditioned on delivery, so it pools weighted by each
    chunk's *delivered* count (``samples x (1 - loss)``); a chunk where
    every trial lost the symbol contributes nothing.
    """
    total = 0
    risk_sum = 0.0
    loss_sum = 0.0
    delay_sum = 0.0
    delivered_sum = 0.0
    for chunk in chunk_values:
        samples = chunk["samples"]
        total += samples
        risk_sum += chunk["risk"] * samples
        loss_sum += chunk["loss"] * samples
        delivered = samples * (1.0 - chunk["loss"])
        if delivered > 0 and not np.isnan(chunk["delay"]):
            delay_sum += chunk["delay"] * delivered
            delivered_sum += delivered
    if total == 0:
        raise ValueError("no chunks to pool")
    return PropertyEstimates(
        risk=risk_sum / total,
        loss=loss_sum / total,
        delay=delay_sum / delivered_sum if delivered_sum > 0 else float("nan"),
        samples=total,
    )


def subset_sweep_spec(
    channels: ChannelSet,
    k: int,
    subset: Iterable[int],
    samples: int = 100_000,
    chunks: int = 8,
    seed: int = 0,
) -> SweepSpec:
    """The chunked z/l/d(k, M) estimation as a declarative spec."""
    members = sorted(channels.validate_subset(subset))
    base = dict(_channel_vectors(channels))
    base.update({"k": int(k), "subset": members, "seed": int(seed)})
    return SweepSpec(
        spec_id="mc/subset",
        base=base,
        grid=[
            {"chunk": index, "samples": count}
            for index, count in enumerate(_split_samples(samples, chunks))
        ],
    )


def estimate_subset_properties_sweep(
    channels: ChannelSet,
    k: int,
    subset: Iterable[int],
    samples: int = 100_000,
    chunks: int = 8,
    seed: int = 0,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> PropertyEstimates:
    """Estimate z(k, M), l(k, M), d(k, M) over independently-seeded chunks.

    Functionally the same estimator as
    :func:`estimate_subset_properties`, but the trial budget is split into
    ``chunks`` sweep points so the work fans out over ``jobs`` processes
    and intermediate chunks can be cached; the pooled result depends only
    on ``(channels, k, subset, samples, chunks, seed)``, never on ``jobs``.
    """
    spec = subset_sweep_spec(channels, k, subset, samples, chunks, seed)
    runner = SweepRunner(jobs=jobs, cache=cache)
    return _pool_chunks(values(runner.run(spec, mc_chunk_point)))


def estimate_schedule_properties_sweep(
    schedule: ShareSchedule,
    samples: int = 100_000,
    chunks: int = 8,
    seed: int = 0,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> PropertyEstimates:
    """Estimate Z(p), L(p), D(p) with sweep-orchestrated chunked trials.

    Stratified exactly like :func:`estimate_schedule_properties` (each
    schedule atom gets a sample share proportional to its probability,
    atoms combine with exact weights), with each atom's trials further
    split into independently-seeded chunks run through the sweep runner.
    """
    total_risk = 0.0
    total_loss = 0.0
    total_delay = 0.0
    delay_valid = True
    used = 0
    for (k, members), probability in schedule.support():
        atom_samples = max(1000, int(round(samples * probability)))
        estimate = estimate_subset_properties_sweep(
            schedule.channels,
            k,
            members,
            samples=atom_samples,
            chunks=chunks,
            seed=seed,
            jobs=jobs,
            cache=cache,
        )
        used += estimate.samples
        total_risk += probability * estimate.risk
        total_loss += probability * estimate.loss
        if np.isnan(estimate.delay):
            delay_valid = False
        else:
            total_delay += probability * estimate.delay
    return PropertyEstimates(
        risk=total_risk,
        loss=total_loss,
        delay=total_delay if delay_valid else float("nan"),
        samples=used,
    )
