"""Vectorised Monte-Carlo estimators for the model's closed forms.

These estimators sample the protocol *model* directly -- draw (k, M) from
the schedule, draw per-channel observation/loss events, compute arrival
order statistics -- without any of the protocol or simulator machinery.
They serve as an independent check that the subset and schedule formulas
of Sec. IV-A are correct, and power the adversary-simulation example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


import numpy as np

from repro.core.channel import ChannelSet
from repro.core.schedule import ShareSchedule


@dataclass(frozen=True)
class PropertyEstimates:
    """Monte-Carlo estimates of the three per-symbol properties.

    ``delay`` is conditioned on the symbol being delivered (as in the
    model); it is NaN when every sampled symbol was lost.
    """

    risk: float
    loss: float
    delay: float
    samples: int


def estimate_subset_properties(
    channels: ChannelSet,
    k: int,
    subset: Iterable[int],
    rng: np.random.Generator,
    samples: int = 100_000,
) -> PropertyEstimates:
    """Estimate z(k, M), l(k, M) and d(k, M) by direct simulation.

    For each trial: every channel of M independently observes its share
    with probability z_i and loses it with probability l_i; the symbol is
    compromised when >= k observations occur, lost when < k shares
    survive, and otherwise delivered at the k-th smallest surviving delay.
    """
    members = sorted(channels.validate_subset(subset))
    if not 1 <= k <= len(members):
        raise ValueError(f"threshold k={k} invalid for |M|={len(members)}")
    risks = np.array([channels[i].risk for i in members])
    losses = np.array([channels[i].loss for i in members])
    delays = np.array([channels[i].delay for i in members])

    observed = rng.random((samples, len(members))) < risks
    compromised = observed.sum(axis=1) >= k

    survived = rng.random((samples, len(members))) >= losses
    arrived = survived.sum(axis=1)
    lost = arrived < k

    # Delay: k-th smallest delay among surviving shares, delivered rows only.
    delay_matrix = np.where(survived, delays, np.inf)
    kth = np.sort(delay_matrix, axis=1)[:, k - 1]
    delivered = ~lost
    mean_delay = float(kth[delivered].mean()) if delivered.any() else float("nan")

    return PropertyEstimates(
        risk=float(compromised.mean()),
        loss=float(lost.mean()),
        delay=mean_delay,
        samples=samples,
    )


def estimate_schedule_properties(
    schedule: ShareSchedule,
    rng: np.random.Generator,
    samples: int = 100_000,
) -> PropertyEstimates:
    """Estimate Z(p), L(p) and D(p) by sampling pairs from the schedule.

    Stratified by schedule atom: each (k, M) pair receives a share of the
    sample budget proportional to its probability, and the per-atom
    estimates are combined with the exact weights.  This removes the
    sampling noise of the categorical draw itself.
    """
    total_risk = 0.0
    total_loss = 0.0
    total_delay = 0.0
    delay_valid = True
    used = 0
    for (k, members), probability in schedule.support():
        atom_samples = max(1000, int(round(samples * probability)))
        estimate = estimate_subset_properties(
            schedule.channels, k, members, rng, samples=atom_samples
        )
        used += estimate.samples
        total_risk += probability * estimate.risk
        total_loss += probability * estimate.loss
        # The paper's D(p) weights each atom's (delivery-conditioned)
        # d(k, M) by plain p(k, M).
        if np.isnan(estimate.delay):
            delay_valid = False
        else:
            total_delay += probability * estimate.delay
    return PropertyEstimates(
        risk=total_risk,
        loss=total_loss,
        delay=total_delay if delay_valid else float("nan"),
        samples=used,
    )
