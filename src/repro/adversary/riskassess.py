"""Network risk assessment: estimating the risk vector z.

The model consumes a per-channel risk vector "estimated using network risk
assessment techniques" (Sec. III-A, citing Arnes et al.'s HMM-based method
[28]).  This module implements that substrate so the pipeline from raw
monitoring data to protocol parameters is complete:

* each channel is modelled as a two-state hidden Markov model -- the
  channel is either SAFE or COMPROMISED (eavesdropped) -- with known
  transition dynamics;
* a monitoring system (IDS, integrity probes) emits one binary alert
  observation per epoch, with known true/false-positive rates;
* the forward algorithm filters the alert stream into
  ``P(compromised | observations)``, and the filtered probability is the
  channel's risk metric ``z_i``.

A ground-truth simulator is included so the estimator can be validated
end-to-end: generate a compromise trajectory, emit alerts, estimate, and
compare against the trajectory the estimates were derived from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.channel import ChannelSet

#: Hidden state indices.
SAFE, COMPROMISED = 0, 1


@dataclass(frozen=True)
class HmmRiskModel:
    """Parameters of the per-channel compromise HMM.

    Attributes:
        p_compromise: per-epoch probability a safe channel becomes
            compromised (SAFE -> COMPROMISED transition).
        p_recover: per-epoch probability a compromise is remediated
            (COMPROMISED -> SAFE transition).
        p_false_alert: probability of an alert in a SAFE epoch.
        p_true_alert: probability of an alert in a COMPROMISED epoch.
        initial_risk: prior probability of starting compromised.
    """

    p_compromise: float = 0.01
    p_recover: float = 0.05
    p_false_alert: float = 0.05
    p_true_alert: float = 0.7
    initial_risk: float = 0.05

    def __post_init__(self) -> None:
        for name in ("p_compromise", "p_recover", "p_false_alert", "p_true_alert", "initial_risk"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.p_true_alert <= self.p_false_alert:
            raise ValueError(
                "alerts must be more likely under compromise "
                f"(p_true_alert={self.p_true_alert} <= p_false_alert={self.p_false_alert})"
            )

    @property
    def transition(self) -> np.ndarray:
        """Row-stochastic transition matrix, indexed [from, to]."""
        return np.array(
            [
                [1.0 - self.p_compromise, self.p_compromise],
                [self.p_recover, 1.0 - self.p_recover],
            ]
        )

    @property
    def emission(self) -> np.ndarray:
        """Emission matrix, indexed [state, alert]."""
        return np.array(
            [
                [1.0 - self.p_false_alert, self.p_false_alert],
                [1.0 - self.p_true_alert, self.p_true_alert],
            ]
        )

    @property
    def stationary_risk(self) -> float:
        """Long-run probability of compromise with no observations."""
        total = self.p_compromise + self.p_recover
        return self.p_compromise / total if total > 0 else 0.0


class HmmRiskEstimator:
    """Filters alert streams into per-channel risk estimates.

    One estimator instance tracks one channel; its :meth:`update` consumes
    one epoch's alert bit and returns the posterior compromise probability
    (the channel's current ``z_i``).
    """

    def __init__(self, model: HmmRiskModel):
        self.model = model
        self._belief = np.array([1.0 - model.initial_risk, model.initial_risk])

    @property
    def risk(self) -> float:
        """Current ``P(compromised | all alerts so far)``."""
        return float(self._belief[COMPROMISED])

    def update(self, alert: bool) -> float:
        """Fold in one epoch's alert observation (forward-algorithm step)."""
        predicted = self._belief @ self.model.transition
        likelihood = self.model.emission[:, int(bool(alert))]
        unnormalised = predicted * likelihood
        total = unnormalised.sum()
        # Exact-zero sentinel: total is exactly 0.0 only when every state's
        # likelihood product underflows to zero, the one case where the
        # normalising division is undefined.
        if total == 0.0:  # pragma: no cover - both likelihoods zero  # lint: disable=float-eq
            self._belief = predicted
        else:
            self._belief = unnormalised / total
        return self.risk

    def update_many(self, alerts: Sequence[bool]) -> float:
        """Fold in a whole alert history; returns the final risk."""
        for alert in alerts:
            self.update(alert)
        return self.risk


def forward_posterior(model: HmmRiskModel, alerts: Sequence[bool]) -> float:
    """One-shot forward filtering (reference implementation for tests)."""
    estimator = HmmRiskEstimator(model)
    return estimator.update_many(alerts)


def simulate_channel_history(
    model: HmmRiskModel,
    epochs: int,
    rng: np.random.Generator,
) -> Tuple[List[int], List[bool]]:
    """Generate a ground-truth compromise trajectory and its alert stream.

    Returns:
        ``(states, alerts)``: per-epoch hidden states and emitted alerts.
    """
    if epochs < 1:
        raise ValueError("epochs must be positive")
    transition = model.transition
    emission = model.emission
    states: List[int] = []
    alerts: List[bool] = []
    state = COMPROMISED if rng.random() < model.initial_risk else SAFE
    for _ in range(epochs):
        state = COMPROMISED if rng.random() < transition[state, COMPROMISED] else SAFE
        states.append(state)
        alerts.append(bool(rng.random() < emission[state, 1]))
    return states, alerts


def assess_channel_set(
    base: ChannelSet,
    models: Sequence[HmmRiskModel],
    alert_streams: Sequence[Sequence[bool]],
) -> ChannelSet:
    """Rebuild a channel set with risks estimated from monitoring data.

    Args:
        base: channel set whose loss/delay/rate are kept as-is.
        models: one HMM per channel.
        alert_streams: one alert history per channel.

    Returns:
        A new :class:`ChannelSet` whose risk vector is the filtered
        posterior compromise probability of each channel.
    """
    if not len(base) == len(models) == len(alert_streams):
        raise ValueError("need one model and one alert stream per channel")
    risks = [
        forward_posterior(model, alerts)
        for model, alerts in zip(models, alert_streams)
    ]
    return ChannelSet.from_vectors(
        risks=risks,
        losses=base.losses,
        delays=base.delays,
        rates=base.rates,
        names=[channel.name for channel in base],
    )
