"""One fleet cell: a shared-channel simulation carrying a slice of flows.

A *cell* is the unit of sharding.  Flows inside a cell genuinely contend:
they share one channel set, one sender (behind the DRR mux) and one
receiver, so fairness and back-pressure are simulated faithfully.  Flows
in different cells are independent by construction, which is what makes
fleet execution embarrassingly parallel *and* byte-identical under any
sharding: each cell is a :class:`~repro.sweep.spec.SweepPoint` whose
SHA-256-derived seed depends only on the cell's parameters (its flow
descriptors included), never on which worker runs it or when.

:func:`run_cell` is module-level and takes only JSON-able params plus the
derived seed, so it is picklable and runs identically in-process and in a
pool worker -- the same contract as every sweep point function.

The per-flow *delivery digest* is the parity instrument: a SHA-256 over
the flow's reconstructed symbols in delivery order (sequence number,
payload hash, delivery delay).  Two runs of the same fleet agree on every
digest iff their per-flow delivery traces are byte-identical.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.channel import Channel, ChannelSet
from repro.fleet.mux import FlowMux
from repro.fleet.spec import FleetSpec
from repro.netsim.rng import RngRegistry
from repro.protocol.config import ProtocolConfig
from repro.protocol.remicss import PointToPointNetwork
from repro.protocol.scheduler import DynamicParameterSampler, ParameterSampler

__all__ = ["run_cell"]


class _AuditedSampler(ParameterSampler):
    """Wraps a sampler, counting every (k, m) pick (κ-compliance audit)."""

    def __init__(self, inner: ParameterSampler):
        self.inner = inner
        self.picks: Dict[Tuple[int, int], int] = {}

    def sample(self):
        k, m, subset = self.inner.sample()
        self.picks[(k, m)] = self.picks.get((k, m), 0) + 1
        return k, m, subset

    def average_kappa(self) -> Optional[float]:
        """Observed mean threshold, or None before the first pick."""
        total = sum(self.picks.values())
        if total == 0:
            return None
        return sum(k * count for (k, _m), count in self.picks.items()) / total


def _digest_update(digest: "hashlib._Hash", seq: int, payload: Optional[bytes], delay: float) -> None:
    body = "-" if payload is None else hashlib.sha256(payload).hexdigest()
    digest.update(f"{seq}:{body}:{delay!r}\n".encode())


def run_cell(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Simulate one cell; the sweep point function of the fleet runner.

    Args:
        params: JSON-able cell description -- ``cell`` (index), ``flows``
            and ``tenants`` (descriptor dicts, see :mod:`repro.fleet.spec`),
            plus the shared knobs ``channels``, ``loss``, ``delay``,
            ``rate``, ``symbol_size``, ``synthetic``, ``sender_batch_limit``,
            ``batch_reconstruct``, ``quantum`` and ``queue_limit``; the
            optional ``auth`` knob (present only when armed, so existing
            cell seeds are untouched) authenticates every share under a
            cell root key derived from the cell's own seed.
        seed: the point's derived seed -- the only randomness root.

    Returns:
        A JSON-able result: per-flow delivery counts, digests and κ audit,
        plus the cell's sender/receiver/mux counters.
    """
    fleet = FleetSpec.from_dict({"tenants": params["tenants"], "flows": params["flows"]})
    synthetic = bool(params["synthetic"])
    auth = bool(params.get("auth", False))
    symbol_size = int(params["symbol_size"])
    n = int(params["channels"])
    channels = ChannelSet(
        Channel(
            risk=0.1,
            loss=float(params["loss"]),
            delay=float(params["delay"]),
            rate=float(params["rate"]),
        )
        for _ in range(n)
    )
    registry = RngRegistry(seed)
    network = PointToPointNetwork(channels, symbol_size, registry)
    auth_config = None
    if auth:
        # The cell's root key derives from its seed -- which itself derives
        # from the cell's identity alone -- so any shard computes the same
        # keys; per-flow keys then derive by flow id, so every tenant flow
        # is authenticated under its own key (docs/AUTH.md).
        from repro.protocol.auth import AuthConfig, derive_root_key

        auth_config = AuthConfig(root_key=derive_root_key(seed))
    config = ProtocolConfig(
        kappa=1.0,
        mu=1.0,
        symbol_size=symbol_size,
        share_synthetic=synthetic,
        sender_batch_limit=int(params["sender_batch_limit"]),
        batch_reconstruct=bool(params["batch_reconstruct"]),
        auth=auth_config,
    )
    node_a, node_b = network.node_pair(config, registry)
    mux = FlowMux(
        node_a.sender,
        quantum=float(params["quantum"]),
        queue_limit=int(params["queue_limit"]),
    )

    audits: Dict[int, _AuditedSampler] = {}
    sources: Dict[int, np.random.Generator] = {}
    for flow_spec in fleet.flows:
        tenant = fleet.tenant(flow_spec.tenant)
        audit = _AuditedSampler(
            DynamicParameterSampler(
                flow_spec.kappa,
                flow_spec.mu,
                registry.stream(f"flow{flow_spec.flow}.sched"),
            )
        )
        audits[flow_spec.flow] = audit
        mux.register(flow_spec.flow, weight=tenant.weight, sampler=audit)
        if not synthetic:
            sources[flow_spec.flow] = registry.stream(f"flow{flow_spec.flow}.src")

    digests: Dict[int, "hashlib._Hash"] = {
        flow_spec.flow: hashlib.sha256() for flow_spec in fleet.flows
    }
    delivered: Dict[int, int] = {flow_spec.flow: 0 for flow_spec in fleet.flows}

    def record(flow: int, seq: int, payload: Optional[bytes], delay: float) -> None:
        delivered[flow] += 1
        _digest_update(digests[flow], seq, payload, delay)

    node_b.receiver.on_deliver_flow = record

    def arrive(flow: int) -> None:
        if synthetic:
            payload = None
        else:
            payload = (
                sources[flow]
                .integers(0, 256, size=symbol_size, dtype=np.uint8)
                .tobytes()
            )
        mux.enqueue(flow, payload)

    engine = network.engine
    for flow_spec in fleet.flows:
        for i in range(flow_spec.symbols):
            engine.schedule_at(flow_spec.start + i / flow_spec.rate, arrive, flow_spec.flow)
    engine.run()

    flows_out: Dict[str, Any] = {}
    for flow_spec in fleet.flows:
        flow = flow_spec.flow
        tenant = fleet.tenant(flow_spec.tenant)
        mux_block = mux.stats.flows.get(
            flow, {"enqueued": 0, "offered": 0, "dropped": 0}
        )
        flows_out[str(flow)] = {
            "tenant": flow_spec.tenant,
            "kappa": flow_spec.kappa,
            "min_kappa": tenant.min_kappa,
            "enqueued": mux_block["enqueued"],
            "offered": mux_block["offered"],
            "mux_drops": mux_block["dropped"],
            "delivered": delivered[flow],
            "digest": digests[flow].hexdigest(),
            "avg_kappa": audits[flow].average_kappa(),
            "picks": sum(audits[flow].picks.values()),
        }
    return {
        "cell": int(params["cell"]),
        "flows": flows_out,
        "sender": node_a.sender.stats.as_dict(),
        "receiver": node_b.receiver.stats.as_dict(),
        "mux": {
            "rounds": mux.stats.rounds,
            "offer_failures": mux.stats.offer_failures,
        },
        "events": engine.events_processed,
    }
