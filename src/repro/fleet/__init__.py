"""Fleet-scale multi-tenant protocol workloads.

The paper evaluates one secret stream between two endpoints; this package
scales that to a *fleet*: many tenants, each owning flows with their own
privacy requirement (a κ floor), multiplexed over shared channel sets and
executed across worker processes with byte-identical results regardless
of sharding (docs/FLEET.md).

Layers:

* :mod:`repro.fleet.spec` -- tenants, flow descriptors, deterministic
  fleet synthesis;
* :mod:`repro.fleet.admission` -- per-tenant admission control (κ floors
  and flow quotas);
* :mod:`repro.fleet.mux` -- deficit-round-robin fair multiplexing of
  flows onto one :class:`~repro.protocol.sender.ShareSender`;
* :mod:`repro.fleet.cell` -- the picklable per-cell simulation (one
  shared-channel network carrying a slice of the fleet);
* :mod:`repro.fleet.runner` -- shards cells over a process pool via
  :mod:`repro.sweep` and merges the per-flow delivery digests.
"""

from repro.fleet.admission import AdmissionController, AdmissionStats
from repro.fleet.cell import run_cell
from repro.fleet.mux import FlowMux, FlowMuxStats
from repro.fleet.runner import FleetReport, FleetRunner
from repro.fleet.spec import FleetSpec, FlowSpec, Tenant, synthesize_fleet

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "FleetReport",
    "FleetRunner",
    "FleetSpec",
    "FlowMux",
    "FlowMuxStats",
    "FlowSpec",
    "Tenant",
    "run_cell",
    "synthesize_fleet",
]
