"""Deficit-round-robin multiplexing of fleet flows onto one sender.

One :class:`~repro.protocol.sender.ShareSender` carries every flow of a
cell; the mux sits in front of its source queue and decides *whose*
symbol goes next.  Classic deficit round robin (Shreedhar & Varghese):
each registered flow keeps a FIFO of pending payloads and a deficit
counter; a round visits the active flows in arrival order, grants each
``quantum * weight`` credit, and drains whole symbols while credit and
sender space last.  Weights come from tenant policy, so a weight-2
tenant's flow drains twice the symbols per round of a weight-1 flow when
both are backlogged -- *fairness is enforced here*, before the sender,
while privacy (each flow's own (κ, µ) sampler, registered via
:meth:`~repro.protocol.sender.ShareSender.set_flow_sampler`) is enforced
below, per symbol.

Back-pressure is event-driven and deterministic: the mux stops when the
sender's source queue fills and resumes from the same flow on the next
link-writable notification, the same mechanism the sender itself pumps
on.  While the sender has room the mux hands symbols straight through,
so single-flow behaviour is unchanged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.protocol.scheduler import ParameterSampler
from repro.protocol.sender import ShareSender

__all__ = ["FlowMux", "FlowMuxStats"]

#: Per-flow counter fields tracked inside :class:`FlowMuxStats.flows`.
FLOW_MUX_FIELDS = ("enqueued", "offered", "dropped")


@dataclass
class FlowMuxStats:
    """Counters kept by the multiplexer."""

    #: DRR visits (one credit grant each).
    rounds: int = 0
    enqueued: int = 0
    offered: int = 0
    #: Payloads refused because the flow's own queue was full.
    dropped: int = 0
    #: ``sender.offer`` returned False despite a space check (admission
    #: paused between check and offer; the payload is shed).
    offer_failures: int = 0
    #: Per-flow counters, keyed by flow id (see FLOW_MUX_FIELDS).
    flows: Dict[int, Dict[str, int]] = field(default_factory=dict)

    def count(self, flow: int, name: str, delta: int = 1) -> None:
        setattr(self, name, getattr(self, name) + delta)
        block = self.flows.get(flow)
        if block is None:
            block = {field_name: 0 for field_name in FLOW_MUX_FIELDS}
            self.flows[flow] = block
        block[name] += delta

    def as_dict(self) -> dict:
        out = dict(self.__dict__)
        out["flows"] = {
            str(flow): dict(block) for flow, block in sorted(self.flows.items())
        }
        return out


class FlowMux:
    """Fair multiplexer in front of one sender's source queue.

    Args:
        sender: the shared send path.  The mux watches the sender's links
            for writable notifications, so it resumes exactly when the
            sender can drain again.
        quantum: credit (in symbols) granted per DRR visit to a flow of
            weight 1.  Must be positive; fractional quanta are fine --
            credit accumulates across rounds.
        queue_limit: per-flow pending-payload bound; enqueues beyond it
            are dropped (and counted per flow).
    """

    def __init__(self, sender: ShareSender, quantum: float = 1.0, queue_limit: int = 64):
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be at least 1, got {queue_limit}")
        self.sender = sender
        self.quantum = quantum
        self.queue_limit = queue_limit
        self.stats = FlowMuxStats()
        self._queues: Dict[int, Deque[Optional[bytes]]] = {}
        self._weights: Dict[int, float] = {}
        self._deficits: Dict[int, float] = {}
        #: Flows with pending payloads, in DRR visiting order.
        self._active: Deque[int] = deque()
        #: True while the head flow's turn is underway: it has been
        #: credited and must not be credited again when a pump resumes
        #: after sender back-pressure interrupted its turn.
        self._turn_open = False
        self._pumping = False
        for port in sender.ports:
            port.link.watch_writable(self.pump)

    def register(
        self,
        flow: int,
        weight: float = 1.0,
        sampler: Optional[ParameterSampler] = None,
    ) -> None:
        """Add one flow to the mux (idempotence is an error).

        Args:
            flow: nonzero wire flow id.
            weight: DRR weight (typically the owning tenant's).
            sampler: when given, registered as the flow's parameter
                sampler on the underlying sender.
        """
        if flow < 1:
            raise ValueError(f"flow ids start at 1, got {flow}")
        if flow in self._queues:
            raise ValueError(f"flow {flow} already registered")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self._queues[flow] = deque()
        self._weights[flow] = weight
        self._deficits[flow] = 0.0
        if sampler is not None:
            self.sender.set_flow_sampler(flow, sampler)

    @property
    def backlog(self) -> int:
        """Payloads pending across every flow queue (excludes the sender's)."""
        return sum(len(queue) for queue in self._queues.values())

    # Per-tenant plaintext enters the fleet here (docs/TAINT.md).
    def enqueue(self, flow: int, payload: Optional[bytes] = None) -> bool:  # taint: source=payload
        """Queue one payload on ``flow``; False if the flow queue was full."""
        queue = self._queues.get(flow)
        if queue is None:
            raise KeyError(f"flow {flow} is not registered")
        if len(queue) >= self.queue_limit:
            self.stats.count(flow, "dropped")
            return False
        was_empty = not queue
        queue.append(payload)
        self.stats.count(flow, "enqueued")
        if was_empty:
            self._active.append(flow)
        self.pump()
        return True

    def pump(self) -> None:
        """Drain flow queues into the sender while it has room."""
        if self._pumping:
            return
        self._pumping = True
        try:
            while self._active and self._sender_space():
                flow = self._active[0]
                queue = self._queues[flow]
                if not self._turn_open:
                    # Credit once per turn -- NOT once per pump, or a flow
                    # interrupted by sender back-pressure would be
                    # re-credited on every resume and monopolize the head.
                    self._deficits[flow] += self.quantum * self._weights[flow]
                    self.stats.rounds += 1
                    self._turn_open = True
                while queue and self._deficits[flow] >= 1.0 and self._sender_space():
                    payload = queue.popleft()
                    self._deficits[flow] -= 1.0
                    self.stats.count(flow, "offered")
                    if not self.sender.offer(payload, flow=flow):
                        self.stats.offer_failures += 1
                if not queue:
                    # Standard DRR: an emptied flow forfeits leftover credit.
                    self._deficits[flow] = 0.0
                    self._active.popleft()
                    self._turn_open = False
                elif self._deficits[flow] < 1.0:
                    self._active.rotate(-1)  # credit spent; next flow's turn
                    self._turn_open = False
                else:
                    return  # sender full mid-turn; a writable event resumes it
        finally:
            self._pumping = False

    def _sender_space(self) -> bool:
        return (
            not self.sender.admission_paused
            and self.sender.backlog < self.sender.config.source_queue_limit
        )
