"""Fleet execution: admission, cell sharding, merge, κ-compliance audit.

:class:`FleetRunner` turns a :class:`~repro.fleet.spec.FleetSpec` into a
grid of cell sweep points and executes them through
:class:`~repro.sweep.runner.SweepRunner` -- serially with ``shards=1``,
or fanned out over a process pool.  Shard parity is inherited, not
re-implemented: each cell's seed derives from its parameters alone
(:func:`repro.sweep.spec.derive_seed`), so the merged
:class:`FleetReport` -- every per-flow digest included -- is
byte-identical for any shard count.

Observability: a run counts ``fleet_flows_total``,
``fleet_flows_admitted_total``, ``fleet_flows_rejected_total``,
``fleet_cells_total``, ``fleet_symbols_delivered_total``,
``fleet_mux_drops_total`` and ``fleet_kappa_floor_violations_total`` on
the attached registry (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.fleet.admission import REASONS, AdmissionController
from repro.fleet.cell import run_cell
from repro.fleet.spec import FleetSpec
from repro.sweep.runner import SweepRunner, values
from repro.sweep.spec import SweepSpec

__all__ = ["FleetReport", "FleetRunner"]


@dataclass
class FleetReport:
    """The merged outcome of one fleet run.

    Attributes:
        spec_id: the sweep spec id the cells ran under.
        shards: worker processes used.
        cells: cell count.
        flows_total: flows in the input fleet.
        admitted: flows past admission.
        rejected: rejection counts by reason.
        rejected_flows: flow id -> reason, for every refused flow.
        delivered_total: reconstructed symbols across the fleet.
        offered_total: symbols the mux handed to senders.
        mux_drops_total: payloads shed at per-flow mux queues.
        kappa_floor_violations: admitted flows whose configured κ sits
            below their tenant's floor (always 0 unless admission is
            bypassed; exported as a metric so regressions are loud).
        per_flow: flow id -> the cell's per-flow record (delivery count,
            digest, κ audit...).
        tenants: tenant name -> fleet-level summary (flows, delivered,
            weakest observed average κ, the floor, compliance).
        fleet_digest: SHA-256 over every per-flow digest in flow order --
            one fingerprint for shard-parity checks.
        wall_time: sweep wall-clock seconds.
        flows_per_sec: admitted flows divided by wall time.
    """

    spec_id: str
    shards: int
    cells: int = 0
    flows_total: int = 0
    admitted: int = 0
    rejected: Dict[str, int] = field(default_factory=dict)
    rejected_flows: Dict[int, str] = field(default_factory=dict)
    delivered_total: int = 0
    offered_total: int = 0
    mux_drops_total: int = 0
    kappa_floor_violations: int = 0
    per_flow: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    tenants: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    fleet_digest: str = ""
    wall_time: float = 0.0
    flows_per_sec: float = 0.0

    def as_dict(self) -> dict:
        out = dict(self.__dict__)
        out["rejected_flows"] = {
            str(flow): reason for flow, reason in sorted(self.rejected_flows.items())
        }
        out["per_flow"] = {
            str(flow): dict(record) for flow, record in sorted(self.per_flow.items())
        }
        return out


class FleetRunner:
    """Runs fleets; see the module docstring for semantics.

    Args:
        shards: worker processes for cell execution (1 = serial, the
            reference path; any value yields byte-identical reports).
        flows_per_cell: how many flows share one cell's channels.
        retries: extra attempts per failed cell.
        cache: optional :class:`~repro.sweep.cache.ResultCache`.
        obs: optional :class:`~repro.obs.instrument.Observability`.
    """

    def __init__(
        self,
        shards: int = 1,
        flows_per_cell: int = 32,
        retries: int = 0,
        cache: Optional[Any] = None,
        obs: Optional[Any] = None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if flows_per_cell < 1:
            raise ValueError(f"flows_per_cell must be >= 1, got {flows_per_cell}")
        self.shards = shards
        self.flows_per_cell = flows_per_cell
        self.retries = retries
        self.cache = cache
        self.obs = obs

    def run(
        self,
        fleet: FleetSpec,
        spec_id: str = "fleet",
        channels: int = 4,
        loss: float = 0.0,
        delay: float = 0.05,
        rate: float = 64.0,
        symbol_size: int = 64,
        synthetic: bool = True,
        sender_batch_limit: int = 8,
        batch_reconstruct: bool = True,
        quantum: float = 1.0,
        queue_limit: int = 64,
        auth: bool = False,
    ) -> FleetReport:
        """Admit, shard, execute and merge one fleet.

        The keyword knobs describe the per-cell environment (channel
        shape, symbol size, batching) and become part of every cell's
        sweep-point parameters -- changing any of them changes every
        cell's derived seed, exactly like editing a sweep grid.  ``auth``
        arms authenticated shares (docs/AUTH.md) and requires real
        payloads; it enters the cell parameters only when armed, so every
        existing unauthenticated cell keeps its exact seed.
        """
        if auth and synthetic:
            raise ValueError("auth requires real payloads (synthetic=False)")
        report = FleetReport(
            spec_id=spec_id, shards=self.shards, flows_total=len(fleet.flows)
        )
        controller = AdmissionController(fleet.tenants)
        admitted, rejected_flows = controller.filter(fleet.flows)
        report.admitted = len(admitted)
        report.rejected = dict(controller.stats.rejected)
        report.rejected_flows = rejected_flows

        grid: List[Dict[str, Any]] = []
        for index in range(0, len(admitted), self.flows_per_cell):
            chunk = admitted[index : index + self.flows_per_cell]
            grid.append(
                {
                    "cell": len(grid),
                    "flows": [flow.as_dict() for flow in chunk],
                }
            )
        report.cells = len(grid)
        base = {
            "tenants": [tenant.as_dict() for tenant in fleet.tenants],
            "channels": channels,
            "loss": loss,
            "delay": delay,
            "rate": rate,
            "symbol_size": symbol_size,
            "synthetic": synthetic,
            "sender_batch_limit": sender_batch_limit,
            "batch_reconstruct": batch_reconstruct,
            "quantum": quantum,
            "queue_limit": queue_limit,
        }
        if auth:
            base["auth"] = True

        cell_values: List[Dict[str, Any]] = []
        sweep = SweepRunner(
            jobs=self.shards, retries=self.retries, cache=self.cache, obs=self.obs
        )
        if grid:
            spec = SweepSpec(spec_id=spec_id, grid=grid, base=base)
            cell_values = values(sweep.run(spec, run_cell))
        report.wall_time = sweep.stats.wall_time

        self._merge(fleet, report, cell_values)
        if report.wall_time > 0:
            report.flows_per_sec = report.admitted / report.wall_time
        self._count_metrics(report)
        return report

    # -- internals --------------------------------------------------------------

    def _merge(
        self,
        fleet: FleetSpec,
        report: FleetReport,
        cell_values: List[Dict[str, Any]],
    ) -> None:
        for value in cell_values:
            for flow_key, record in sorted(
                value["flows"].items(), key=lambda item: int(item[0])
            ):
                flow = int(flow_key)
                report.per_flow[flow] = record
                report.delivered_total += record["delivered"]
                report.offered_total += record["offered"]
                report.mux_drops_total += record["mux_drops"]
                if record["kappa"] < record["min_kappa"]:
                    report.kappa_floor_violations += 1

        digest = hashlib.sha256()
        for flow in sorted(report.per_flow):
            digest.update(f"{flow}:{report.per_flow[flow]['digest']}\n".encode())
        report.fleet_digest = digest.hexdigest()

        for tenant in fleet.tenants:
            records = [
                record
                for record in report.per_flow.values()
                if record["tenant"] == tenant.name
            ]
            observed = [
                record["avg_kappa"]
                for record in records
                if record["avg_kappa"] is not None
            ]
            report.tenants[tenant.name] = {
                "flows": len(records),
                "delivered": sum(record["delivered"] for record in records),
                "min_kappa": tenant.min_kappa,
                "weakest_avg_kappa": min(observed) if observed else None,
                # Compliance is a *configuration* property: every admitted
                # flow's target κ meets the floor (the dynamic sampler's
                # expectation is exactly that target).
                "compliant": all(
                    record["kappa"] >= tenant.min_kappa for record in records
                ),
            }

    def _count_metrics(self, report: FleetReport) -> None:
        if self.obs is None:
            return
        registry = self.obs.registry
        registry.counter("fleet_flows_total").inc(report.flows_total)
        registry.counter("fleet_flows_admitted_total").inc(report.admitted)
        registry.counter("fleet_flows_rejected_total").inc(
            sum(report.rejected.get(reason, 0) for reason in REASONS)
        )
        registry.counter("fleet_cells_total").inc(report.cells)
        registry.counter("fleet_symbols_delivered_total").inc(report.delivered_total)
        registry.counter("fleet_mux_drops_total").inc(report.mux_drops_total)
        registry.counter("fleet_kappa_floor_violations_total").inc(
            report.kappa_floor_violations
        )
