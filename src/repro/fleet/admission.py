"""Per-tenant admission control for fleet flows.

Admission is the fleet's privacy gate: a flow whose configured average
threshold κ sits below its tenant's floor is refused *before* any share
is scheduled, so the multiplexer never has to weaken a tenant's secrecy
requirement to make room.  (This mirrors the resilience layer's DEGRADED
rule -- shed load rather than leak -- applied at flow granularity.)

Decisions are pure functions of (tenant policy, flows admitted so far),
evaluated in flow-id order by :meth:`AdmissionController.filter`, so the
admitted set is independent of process count and submission order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.fleet.spec import FlowSpec, Tenant

__all__ = ["AdmissionController", "AdmissionStats"]

#: Rejection reasons, in reporting order.
REASONS = ("unknown_tenant", "kappa_floor", "quota")


@dataclass
class AdmissionStats:
    """Counters kept by one controller."""

    admitted: int = 0
    rejected: Dict[str, int] = field(
        default_factory=lambda: {reason: 0 for reason in REASONS}
    )

    def as_dict(self) -> dict:
        return {"admitted": self.admitted, "rejected": dict(self.rejected)}


class AdmissionController:
    """Admits flows against tenant κ floors and quotas.

    Args:
        tenants: the tenant policies to enforce.
    """

    def __init__(self, tenants: Iterable[Tenant]):
        self.tenants: Dict[str, Tenant] = {}
        for tenant in tenants:
            if tenant.name in self.tenants:
                raise ValueError(f"duplicate tenant {tenant.name!r}")
            self.tenants[tenant.name] = tenant
        self.stats = AdmissionStats()
        self._counts: Dict[str, int] = {name: 0 for name in self.tenants}

    def flows_admitted(self, tenant: str) -> int:
        """How many of ``tenant``'s flows this controller has admitted."""
        return self._counts.get(tenant, 0)

    def admit(self, flow: FlowSpec) -> Optional[str]:
        """Decide one flow; returns None on admission, else the reason.

        Admission mutates the tenant's quota count, so decide flows in a
        deterministic order (``filter`` uses flow-id order).
        """
        tenant = self.tenants.get(flow.tenant)
        if tenant is None:
            return self._reject("unknown_tenant")
        if flow.kappa < tenant.min_kappa:
            return self._reject("kappa_floor")
        if tenant.max_flows is not None and self._counts[tenant.name] >= tenant.max_flows:
            return self._reject("quota")
        self._counts[tenant.name] += 1
        self.stats.admitted += 1
        return None

    def filter(
        self, flows: Iterable[FlowSpec]
    ) -> Tuple[List[FlowSpec], Dict[int, str]]:
        """Partition flows into (admitted, {flow id: rejection reason}).

        Flows are decided in flow-id order regardless of input order, so
        quota outcomes are reproducible.
        """
        admitted: List[FlowSpec] = []
        rejected: Dict[int, str] = {}
        for flow in sorted(flows, key=lambda f: f.flow):
            reason = self.admit(flow)
            if reason is None:
                admitted.append(flow)
            else:
                rejected[flow.flow] = reason
        return admitted, rejected

    def _reject(self, reason: str) -> str:
        self.stats.rejected[reason] += 1
        return reason
