"""Fleet descriptors: tenants, flows, and deterministic synthesis.

A *tenant* states a policy: the weakest average threshold κ it will
tolerate for its traffic (its privacy floor, in the sense of the paper's
secrecy requirement R₁), a fair-share weight, and an optional flow quota.
A *flow* is one secret stream owned by a tenant: its (κ, µ) operating
point, offered rate and symbol budget.  A :class:`FleetSpec` bundles both
and round-trips losslessly through JSON-able dicts, which is what lets a
fleet slice ride inside a :class:`~repro.sweep.spec.SweepPoint` -- the
point's parameters *are* the flow descriptors, so its SHA-256-derived
seed covers them and sharding cannot change any flow's randomness.

Synthesis is deliberately RNG-free: :func:`synthesize_fleet` derives every
flow's tenant and operating point arithmetically from its id, so the same
arguments always produce the same fleet, in every process, with no seed
to thread through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["FleetSpec", "FlowSpec", "Tenant", "synthesize_fleet"]


@dataclass(frozen=True)
class Tenant:
    """One tenant's policy envelope.

    Attributes:
        name: unique tenant label.
        min_kappa: the weakest average threshold κ the tenant accepts for
            any of its flows (admission rejects flows below it).
        weight: deficit-round-robin weight -- a tenant of weight 2 drains
            twice the symbols per round of a weight-1 tenant's flow.
        max_flows: admission quota; ``None`` means unbounded.
    """

    name: str
    min_kappa: float = 1.0
    weight: float = 1.0
    max_flows: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.min_kappa < 1.0:
            raise ValueError(f"min_kappa must be >= 1, got {self.min_kappa}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.max_flows is not None and self.max_flows < 0:
            raise ValueError(f"max_flows must be >= 0, got {self.max_flows}")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "min_kappa": self.min_kappa,
            "weight": self.weight,
            "max_flows": self.max_flows,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Tenant":
        return cls(
            name=data["name"],
            min_kappa=float(data["min_kappa"]),
            weight=float(data["weight"]),
            max_flows=data.get("max_flows"),
        )


@dataclass(frozen=True)
class FlowSpec:
    """One secret stream inside a fleet.

    Attributes:
        flow: wire-level flow id, unique in the fleet and >= 1 (0 is the
            reserved single-flow default stream).
        tenant: owning tenant's name.
        kappa: target average threshold for this flow's share schedule.
        mu: target average multiplicity.
        rate: offered source symbols per unit time.
        symbols: total source symbols the flow offers.
        start: offset of the first symbol (unit time).
    """

    flow: int
    tenant: str
    kappa: float
    mu: float
    rate: float = 1.0
    symbols: int = 1
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.flow < 1:
            raise ValueError(f"flow ids start at 1, got {self.flow}")
        if not 1.0 <= self.kappa <= self.mu:
            raise ValueError(f"need 1 <= κ <= µ, got κ={self.kappa}, µ={self.mu}")
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.symbols < 0:
            raise ValueError(f"symbols must be >= 0, got {self.symbols}")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "flow": self.flow,
            "tenant": self.tenant,
            "kappa": self.kappa,
            "mu": self.mu,
            "rate": self.rate,
            "symbols": self.symbols,
            "start": self.start,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FlowSpec":
        return cls(
            flow=int(data["flow"]),
            tenant=data["tenant"],
            kappa=float(data["kappa"]),
            mu=float(data["mu"]),
            rate=float(data["rate"]),
            symbols=int(data["symbols"]),
            start=float(data["start"]),
        )


@dataclass(frozen=True)
class FleetSpec:
    """A whole fleet: its tenants and their flows.

    Flows are kept in flow-id order regardless of construction order, so
    a spec enumerates identically however it was assembled.
    """

    tenants: Tuple[Tenant, ...] = field(default_factory=tuple)
    flows: Tuple[FlowSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        object.__setattr__(
            self, "flows", tuple(sorted(self.flows, key=lambda f: f.flow))
        )
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {sorted(names)}")
        ids = [flow.flow for flow in self.flows]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate flow ids in fleet")
        known = set(names)
        for flow in self.flows:
            if flow.tenant not in known:
                raise ValueError(
                    f"flow {flow.flow} references unknown tenant {flow.tenant!r}"
                )

    def tenant(self, name: str) -> Tenant:
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        raise KeyError(name)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able form (the substrate for sweep-point params)."""
        return {
            "tenants": [tenant.as_dict() for tenant in self.tenants],
            "flows": [flow.as_dict() for flow in self.flows],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetSpec":
        return cls(
            tenants=tuple(Tenant.from_dict(entry) for entry in data["tenants"]),
            flows=tuple(FlowSpec.from_dict(entry) for entry in data["flows"]),
        )


#: Default tenant mix for synthesized fleets: a strict-privacy tenant with
#: double fair-share weight, a mid tier, and a best-effort tier.
DEFAULT_TENANTS: Tuple[Tenant, ...] = (
    Tenant(name="gold", min_kappa=2.0, weight=2.0),
    Tenant(name="silver", min_kappa=1.5, weight=1.0),
    Tenant(name="bronze", min_kappa=1.0, weight=1.0),
)

#: (κ, µ) operating points cycled across synthesized flows, all feasible
#: on a 4-channel set.  Each tenant only draws points at or above its
#: floor, so a synthesized fleet always passes admission.
_PROFILES: Tuple[Tuple[float, float], ...] = (
    (1.0, 2.0),
    (1.5, 3.0),
    (2.0, 3.0),
    (2.0, 4.0),
    (2.5, 4.0),
    (3.0, 4.0),
)


def synthesize_fleet(
    flows: int,
    tenants: Sequence[Tenant] = DEFAULT_TENANTS,
    rate: float = 4.0,
    symbols: int = 4,
    stagger: float = 0.05,
) -> FleetSpec:
    """A deterministic fleet of ``flows`` flows over ``tenants``.

    Flow ``f`` (1-based) belongs to tenant ``(f - 1) % len(tenants)`` and
    takes the next (κ, µ) profile -- restricted to profiles at or above
    the tenant's κ floor -- in a fixed cycle.  Starts are staggered by
    ``stagger`` per flow so arrivals interleave rather than all landing at
    time zero.  Everything is plain arithmetic on the flow id: no RNG, no
    ambient state, identical output in every process.
    """
    if flows < 0:
        raise ValueError(f"flows must be >= 0, got {flows}")
    if not tenants:
        raise ValueError("need at least one tenant")
    eligible: Dict[str, List[Tuple[float, float]]] = {}
    for tenant in tenants:
        fitting = [pair for pair in _PROFILES if pair[0] >= tenant.min_kappa]
        if not fitting:
            raise ValueError(
                f"no synthesis profile satisfies tenant {tenant.name!r} "
                f"(min_kappa={tenant.min_kappa})"
            )
        eligible[tenant.name] = fitting
    specs = []
    for flow in range(1, flows + 1):
        tenant = tenants[(flow - 1) % len(tenants)]
        profiles = eligible[tenant.name]
        kappa, mu = profiles[((flow - 1) // len(tenants)) % len(profiles)]
        specs.append(
            FlowSpec(
                flow=flow,
                tenant=tenant.name,
                kappa=kappa,
                mu=mu,
                rate=rate,
                symbols=symbols,
                start=stagger * ((flow - 1) % len(tenants)),
            )
        )
    return FleetSpec(tenants=tuple(tenants), flows=tuple(specs))
