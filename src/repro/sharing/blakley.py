"""Blakley's hyperplane threshold scheme over a prime field.

Blakley's 1979 construction (the scheme whose "courier mode" motivates the
paper's protocol model, Sec. II-B) encodes the secret as one coordinate of
a point in GF(p)^k; each share is a hyperplane passing through that point.
Any ``k`` hyperplanes in general position intersect in exactly the point,
while fewer leave a whole affine subspace of candidates.

This implementation:

* maps the byte secret to an element of GF(p) where ``p`` is the smallest
  prime above ``256 ** len(secret)`` (so the map is injective);
* draws random hyperplane normals, redrawing until *every* k-subset of the
  m hyperplanes is in general position (feasible because the protocol's
  ``m <= n`` is small);
* reconstructs by Gaussian elimination modulo p.

Blakley shares are larger than the secret (a normal vector plus an offset),
so the scheme is deliberately *not* rate-optimal -- the reference protocol
uses Shamir.  It is included to show the protocol stack is scheme-agnostic
and to back the historical model in the paper's background section.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Sequence, Tuple

import numpy as np

from repro.gf.gfp import next_prime
from repro.sharing.base import (
    ReconstructionError,
    SecretSharingScheme,
    Share,
    check_share_group,
    validate_parameters,
)


def solve_mod_p(rows: Sequence[Sequence[int]], rhs: Sequence[int], p: int) -> List[int]:
    """Solve the square linear system ``rows @ x = rhs`` modulo prime ``p``.

    Plain Gaussian elimination with partial (nonzero) pivoting over Python
    integers, so arbitrarily large prime moduli are supported.

    Raises:
        ReconstructionError: if the system is singular modulo ``p``.
    """
    n = len(rows)
    aug = [[value % p for value in row] + [rhs[i] % p] for i, row in enumerate(rows)]
    for col in range(n):
        pivot_row = next((r for r in range(col, n) if aug[r][col] % p != 0), None)
        if pivot_row is None:
            raise ReconstructionError("hyperplane system is singular modulo p")
        aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
        inv = pow(aug[col][col], p - 2, p)
        aug[col] = [(value * inv) % p for value in aug[col]]
        for r in range(n):
            if r == col or aug[r][col] == 0:
                continue
            factor = aug[r][col]
            aug[r] = [(a - factor * b) % p for a, b in zip(aug[r], aug[col])]
    return [aug[r][n] for r in range(n)]


def _det_mod_p(rows: Sequence[Sequence[int]], p: int) -> int:
    """Determinant of a square matrix modulo prime ``p`` (for position checks)."""
    n = len(rows)
    mat = [[value % p for value in row] for row in rows]
    det = 1
    for col in range(n):
        pivot_row = next((r for r in range(col, n) if mat[r][col] != 0), None)
        if pivot_row is None:
            return 0
        if pivot_row != col:
            mat[col], mat[pivot_row] = mat[pivot_row], mat[col]
            det = (-det) % p
        det = (det * mat[col][col]) % p
        inv = pow(mat[col][col], p - 2, p)
        for r in range(col + 1, n):
            if mat[r][col] == 0:
                continue
            factor = (mat[r][col] * inv) % p
            mat[r] = [(a - factor * b) % p for a, b in zip(mat[r], mat[col])]
    return det


def _int_to_bytes(value: int, length: int) -> bytes:
    return value.to_bytes(length, "big")


def _bytes_to_int(data: bytes) -> int:
    return int.from_bytes(data, "big")


class BlakleyScheme(SecretSharingScheme):
    """Blakley (k, m) hyperplane sharing over GF(p).

    Args:
        max_secret_len: largest secret, in bytes, the scheme will accept.
            The prime modulus is sized for this length up front so all
            shares of a stream use the same field.
        max_redraws: how many times to redraw hyperplane normals before
            giving up on finding a general-position arrangement (this is a
            safety valve; random normals over a large prime field are in
            general position with overwhelming probability).
    """

    name = "blakley-gfp"

    def __init__(self, max_secret_len: int = 64, max_redraws: int = 64):
        if max_secret_len < 1:
            raise ValueError("max_secret_len must be positive")
        self.max_secret_len = max_secret_len
        self.max_redraws = max_redraws
        # The encoded point coordinate is (length byte + padded payload),
        # i.e. max_secret_len + 1 bytes, so the prime must clear 256**(L+1).
        self.p = next_prime(256 ** (max_secret_len + 1))
        # One field element needs this many bytes on the wire.
        self._element_len = (self.p.bit_length() + 7) // 8

    def _random_element(self, rng: np.random.Generator) -> int:
        """Uniform element of GF(p) via rejection sampling over random bytes."""
        nbytes = self._element_len
        while True:
            candidate = _bytes_to_int(rng.bytes(nbytes))
            if candidate < self.p:
                return candidate

    def split(
        self,
        secret: bytes,
        k: int,
        m: int,
        rng: np.random.Generator,
    ) -> List[Share]:
        validate_parameters(k, m)
        if len(secret) > self.max_secret_len:
            raise ValueError(
                f"secret of {len(secret)} bytes exceeds configured maximum "
                f"{self.max_secret_len}"
            )
        # The point: first coordinate encodes (length, payload) so that
        # reconstruction can strip the length back off losslessly.
        encoded = _bytes_to_int(bytes([len(secret)]) + secret.rjust(self.max_secret_len, b"\0"))
        if encoded >= self.p:  # pragma: no cover - prime is sized to prevent this
            raise ValueError("encoded secret does not fit in the field")
        point = [encoded] + [self._random_element(rng) for _ in range(k - 1)]

        for _ in range(self.max_redraws):
            normals = [[self._random_element(rng) for _ in range(k)] for _ in range(m)]
            if self._general_position(normals, k):
                break
        else:  # pragma: no cover - astronomically unlikely
            raise RuntimeError("could not find hyperplanes in general position")

        shares = []
        for index, normal in enumerate(normals, start=1):
            offset = sum(c * x for c, x in zip(normal, point)) % self.p
            payload = b"".join(
                _int_to_bytes(value, self._element_len) for value in normal + [offset]
            )
            shares.append(Share(index=index, data=payload, k=k, m=m))
        return shares

    def _general_position(self, normals: Sequence[Sequence[int]], k: int) -> bool:
        """Whether every k-subset of the normals is linearly independent."""
        return all(
            _det_mod_p(list(subset), self.p) != 0
            for subset in combinations(normals, k)
        )

    def _decode_share(self, share: Share) -> Tuple[List[int], int]:
        expected = self._element_len * (share.k + 1)
        if len(share.data) != expected:
            raise ReconstructionError(
                f"Blakley share has {len(share.data)} bytes, expected {expected}"
            )
        values = [
            _bytes_to_int(share.data[i * self._element_len : (i + 1) * self._element_len])
            for i in range(share.k + 1)
        ]
        return values[:-1], values[-1]

    def reconstruct(self, shares: Sequence[Share]) -> bytes:
        k = check_share_group(shares)
        group = list(shares)[:k]
        rows = []
        rhs = []
        for share in group:
            normal, offset = self._decode_share(share)
            rows.append(normal)
            rhs.append(offset)
        point = solve_mod_p(rows, rhs, self.p)
        decoded = _int_to_bytes(point[0], self.max_secret_len + 1)
        length = decoded[0]
        if length > self.max_secret_len:
            raise ReconstructionError("reconstructed length byte is corrupt")
        payload = decoded[1:]
        return payload[len(payload) - length :] if length else b""
