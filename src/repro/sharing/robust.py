"""Robust (Byzantine-tolerant) reconstruction for Shamir shares.

The protocol model tolerates *lost* shares (m − k of them) but assumes
delivered shares are honest.  The perfectly-secure-message-transmission
line the paper builds on (Dolev et al. [8]; Franklin & Wright [21]) also
tolerates *corrupted* shares: an adversary controlling a channel may modify
the share it carries, not just read it.

Shamir shares are Reed-Solomon code symbols -- byte position p of share i
is ``f_p(i)`` for a degree-(k−1) polynomial -- so corrupted shares are
correctable: with ``n`` shares of which at most ``e`` are corrupt and
``n >= k + 2e``, the true polynomial is the unique one consistent with at
least ``n − e`` of the shares.  This module implements unique decoding by
candidate search: reconstruct from a k-subset, count how many of the n
shares the candidate explains, and accept once the count clears the
``n − e`` bound.  For the protocol's small m (<= n <= 5 channels) this is
exact, simple, and fast; the same interface could host Berlekamp-Welch for
larger m.

The decoder both recovers the secret and *identifies* the corrupted share
indices, which the protocol surfaces as a per-channel integrity signal
(feedable to the risk estimator).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, Iterable, Sequence



import numpy as np

from repro.gf.batch import lagrange_interpolate
from repro.sharing.base import ReconstructionError, Share, check_share_group
from repro.sharing.shamir import _share_matrix


def max_correctable_errors(num_shares: int, k: int) -> int:
    """The unique-decoding radius: ``e = (n - k) // 2``."""
    if num_shares < k:
        raise ValueError(f"need at least k={k} shares, got {num_shares}")
    return (num_shares - k) // 2


def max_recoverable_erasures(num_shares: int, k: int) -> int:
    """The erasure radius: ``n - k`` shares whose *positions* are known bad.

    An erasure costs one unit of redundancy where an error costs two --
    authenticated shares (:mod:`repro.protocol.auth`) turn corrupted
    channels into erasures and double the tolerable corruption.
    """
    if num_shares < k:
        raise ValueError(f"need at least k={k} shares, got {num_shares}")
    return num_shares - k


def evaluate_shares_at(shares: Sequence[Share], x: int) -> bytes:
    """Evaluate the Shamir polynomial defined by ``shares`` at point ``x``.

    Batched Lagrange evaluation over all byte positions at once (via
    :mod:`repro.gf.batch`); with ``x = 0`` this is ordinary reconstruction,
    with ``x = j`` it predicts what share j *should* contain -- the
    verification primitive of the robust decoder.
    """
    xs = [share.index for share in shares]
    if len(set(xs)) != len(xs):
        raise ReconstructionError(f"duplicate share indices: {sorted(xs)}")
    matrix = _share_matrix(list(shares))
    return lagrange_interpolate(np.array(xs, dtype=np.uint8), matrix, x).tobytes()


@dataclass(frozen=True)
class RobustResult:
    """Outcome of a robust reconstruction.

    Attributes:
        secret: the recovered secret.
        corrupted: indices (share ``index`` values) identified as corrupt.
        agreement: number of shares consistent with the accepted decoding.
    """

    secret: bytes
    corrupted: FrozenSet[int]
    agreement: int

    def __repr__(self) -> str:
        # The recovered plaintext must not leak through logs or pytest
        # output; describe it instead of dumping it (docs/TAINT.md).
        from repro.redact import redact_bytes

        return (
            f"RobustResult(secret={redact_bytes(self.secret)}, "
            f"corrupted={sorted(self.corrupted)}, agreement={self.agreement})"
        )


def robust_reconstruct(shares: Sequence[Share], errors: int = None) -> RobustResult:
    """Recover the secret from shares of which some may be *corrupted*.

    Args:
        shares: delivered shares (all claiming the same (k, m)).
        errors: maximum number of corrupted shares to tolerate; defaults
            to the unique-decoding radius ``(n - k) // 2``.

    Returns:
        The secret plus the identified corrupt share indices.

    Raises:
        ReconstructionError: if no polynomial of degree < k is consistent
            with at least ``n - errors`` of the shares (more corruption
            than the radius, or inconsistent share groups).
    """
    k = check_share_group(shares)
    group = list(shares)
    n = len(group)
    lengths = {len(share.data) for share in group}
    if len(lengths) != 1:
        raise ReconstructionError(f"shares have inconsistent lengths: {sorted(lengths)}")
    radius = max_correctable_errors(n, k)
    if errors is None:
        errors = radius
    if errors > radius:
        raise ReconstructionError(
            f"cannot tolerate {errors} errors with {n} shares at k={k} "
            f"(radius is {radius})"
        )
    required = n - errors
    # Candidate search over k-subsets.  If at most `errors` shares are bad,
    # some subset is entirely clean and its decoding explains >= required
    # shares; uniqueness of RS decoding makes the first hit the answer.
    for subset in combinations(range(n), k):
        candidate = [group[i] for i in subset]
        consistent = list(subset)
        for i in range(n):
            if i in subset:
                continue
            predicted = evaluate_shares_at(candidate, group[i].index)
            if predicted == group[i].data:
                consistent.append(i)
        if len(consistent) >= required:
            corrupted = frozenset(
                group[i].index for i in range(n) if i not in consistent
            )
            return RobustResult(
                secret=evaluate_shares_at(candidate, 0),
                corrupted=corrupted,
                agreement=len(consistent),
            )
    raise ReconstructionError(
        f"no degree-{k - 1} polynomial explains {required} of {n} shares "
        f"(corruption beyond the decoding radius?)"
    )


def reconstruct_with_erasures(
    shares: Sequence[Share],
    erasures: Iterable[int] = (),
    errors: int = 0,
) -> RobustResult:
    """Recover the secret when some share *positions* are known to be bad.

    Erasure decoding: shares whose ``index`` appears in ``erasures`` are
    excluded up front, so each costs one unit of redundancy instead of the
    two an unlocated error costs -- with ``n`` shares and ``t`` erasures,
    recovery holds whenever ``n - t >= k + 2 * errors``.  With
    ``errors = 0`` (the authenticated-share case, where every surviving
    share carries a verified MAC) that is the full erasure radius
    ``n - k`` of :func:`max_recoverable_erasures`, including the
    ``k = m`` boundary where the error radius is zero.

    Args:
        shares: delivered shares (all claiming the same (k, m)), possibly
            including the erased ones.
        erasures: share ``index`` values known to be corrupt (e.g. failed
            MAC verification).
        errors: additional *unlocated* errors to tolerate among the
            surviving shares (0 when survivors are individually verified).

    Returns:
        The secret plus the corrupt share indices (the erasures, unioned
        with any errors located among the survivors).

    Raises:
        ReconstructionError: if fewer than ``k + 2 * errors`` shares
            survive the erasures, or the survivors are inconsistent.
    """
    erased = frozenset(erasures)
    group = [share for share in shares if share.index not in erased]
    if not group:
        raise ReconstructionError("no shares survive the erasures")
    k = check_share_group(group)
    n = len(group)
    if n < k + 2 * errors:
        raise ReconstructionError(
            f"only {n} shares survive {len(erased)} erasures; need "
            f"{k + 2 * errors} for k={k} with {errors} residual errors"
        )
    if errors > 0:
        # Errors may hide among the survivors: fall back to candidate
        # search over the survivors and union the located errors in.
        # Index sets and agreement counts are aggregate facts, not secret
        # bytes (docs/TAINT.md); only `secret` itself stays tainted.
        result = robust_reconstruct(group, errors=errors)
        corrupted = frozenset(result.corrupted | erased)  # taint: declassified
        agreement = int(result.agreement)  # taint: declassified
        return RobustResult(
            secret=result.secret,
            corrupted=corrupted,
            agreement=agreement,
        )
    lengths = {len(share.data) for share in group}
    if len(lengths) != 1:
        raise ReconstructionError(f"shares have inconsistent lengths: {sorted(lengths)}")
    candidate = group[:k]
    for extra in group[k:]:
        if evaluate_shares_at(candidate, extra.index) != extra.data:
            raise ReconstructionError(
                f"share {extra.index} disagrees with the erasure decoding "
                f"(unlocated corruption with errors=0)"
            )
    return RobustResult(
        secret=evaluate_shares_at(candidate, 0),
        corrupted=erased,
        agreement=n,
    )


def verify_share(reference: Sequence[Share], share: Share) -> bool:
    """Whether ``share`` lies on the polynomial defined by ``reference``.

    ``reference`` must hold at least k mutually consistent shares.
    """
    k = reference[0].k
    return evaluate_shares_at(list(reference)[:k], share.index) == share.data
