"""Common interface for threshold secret sharing schemes.

A *(k, m) threshold scheme* splits a secret into ``m`` shares such that any
``k`` of them reconstruct the secret and any ``k - 1`` reveal nothing
(information-theoretically).  The paper's protocol model (Sec. III-C) treats
the scheme as a black box with exactly this contract, so the protocol code
is written against this interface.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


class ReconstructionError(Exception):
    """Raised when a set of shares cannot reconstruct a secret.

    Typical causes: fewer than ``k`` shares supplied, duplicate share
    indices, or shares of inconsistent length.
    """


@dataclass(frozen=True)
class Share:
    """One share of a secret.

    Attributes:
        index: 1-based share index (the x-coordinate for Shamir; the
            hyperplane id for Blakley).  Index 0 is reserved: for Shamir it
            is the secret itself and must never be issued as a share.
        data: the share payload.
        k: threshold used when the secret was split.
        m: multiplicity used when the secret was split.
    """

    index: int
    data: bytes
    k: int
    m: int

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError("share index must be >= 1")
        if not 1 <= self.k <= self.m:
            raise ValueError(f"invalid threshold parameters k={self.k}, m={self.m}")

    def __repr__(self) -> str:
        # Share material must not leak through logs or pytest output;
        # describe the payload instead of dumping it (docs/TAINT.md).
        from repro.redact import redact_bytes

        return (
            f"Share(index={self.index}, data={redact_bytes(self.data)}, "
            f"k={self.k}, m={self.m})"
        )


def validate_parameters(k: int, m: int) -> None:
    """Check the threshold-scheme parameter ordering ``1 <= k <= m``.

    Raises:
        ValueError: if the parameters are out of range.
    """
    if not isinstance(k, (int, np.integer)) or not isinstance(m, (int, np.integer)):
        raise ValueError("k and m must be integers")
    if not 1 <= k <= m:
        raise ValueError(f"threshold parameters must satisfy 1 <= k <= m, got k={k}, m={m}")


def check_share_group(shares: Sequence[Share], k: Optional[int] = None) -> int:
    """Validate a group of shares for reconstruction and return the threshold.

    Ensures the shares agree on (k, m), have distinct indices within range,
    and that at least ``k`` of them are present.

    Args:
        shares: candidate shares of a single secret.
        k: expected threshold; taken from the shares when ``None``.

    Returns:
        The threshold ``k`` the shares were produced with.

    Raises:
        ReconstructionError: if the group is inconsistent or too small.
    """
    if not shares:
        raise ReconstructionError("no shares supplied")
    first = shares[0]
    threshold = first.k if k is None else k
    for share in shares:
        if share.k != first.k or share.m != first.m:
            raise ReconstructionError(
                f"inconsistent parameters among shares: ({share.k},{share.m}) vs ({first.k},{first.m})"
            )
        if share.index > share.m:
            raise ReconstructionError(f"share index {share.index} exceeds multiplicity {share.m}")
    indices = [s.index for s in shares]
    if len(set(indices)) != len(indices):
        raise ReconstructionError(f"duplicate share indices: {sorted(indices)}")
    if len(shares) < threshold:
        raise ReconstructionError(f"need at least {threshold} shares, got {len(shares)}")
    return threshold


class SecretSharingScheme(abc.ABC):
    """Abstract (k, m) threshold secret sharing scheme over byte secrets."""

    #: Human-readable scheme name (used in wire headers and reports).
    name: str = "abstract"

    @abc.abstractmethod
    def split(
        self,
        secret: bytes,
        k: int,
        m: int,
        rng: np.random.Generator,
    ) -> "list[Share]":
        """Split ``secret`` into ``m`` shares with threshold ``k``.

        Args:
            secret: the secret payload.
            k: number of shares required for reconstruction.
            m: number of shares to generate; ``1 <= k <= m``.
            rng: source of randomness for the share material.  Callers
                (protocol, tests) control determinism through this.

        Returns:
            ``m`` shares with indices ``1..m``.
        """

    @abc.abstractmethod
    def reconstruct(self, shares: Sequence[Share]) -> bytes:
        """Recover the secret from at least ``k`` shares.

        Raises:
            ReconstructionError: if the shares are insufficient or
                inconsistent.
        """

    def supports(self, k: int, m: int) -> bool:
        """Whether this scheme can operate with the given parameters.

        Most schemes support any ``1 <= k <= m`` (up to an index limit);
        the XOR perfect scheme only supports ``k == m``.
        """
        try:
            validate_parameters(k, m)
        except ValueError:
            return False
        return True

    def split_many(
        self,
        secrets: Sequence[bytes],
        k: int,
        m: int,
        rng: np.random.Generator,
    ) -> "list[list[Share]]":
        """Split a batch of secrets; element ``i`` is the shares of ``secrets[i]``.

        The default draws randomness per secret in order, so it is
        bit-identical to looping over :meth:`split` with the same rng.
        Vectorized schemes override this to amortize the field arithmetic
        across the whole batch while preserving that exact draw order.
        """
        return [self.split(secret, k, m, rng) for secret in secrets]

    def reconstruct_many(self, groups: "Sequence[Sequence[Share]]") -> "list[bytes]":
        """Reconstruct many share groups; output order matches input order.

        Same bit-identical contract as :meth:`split_many`: overrides may
        batch the arithmetic but must return exactly what a per-group
        :meth:`reconstruct` loop would.
        """
        return [self.reconstruct(group) for group in groups]
