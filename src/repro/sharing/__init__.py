"""Threshold secret sharing schemes.

This package implements, from scratch, the secret sharing substrate that the
paper's protocol model builds on (Sec. II-B and III-C):

* :class:`~repro.sharing.shamir.ShamirScheme` -- Shamir's polynomial
  threshold scheme over GF(2^8), shared byte-wise so that every share is the
  same size as the secret (the ``H(Y) = H(X)`` optimal case the model
  assumes).  This is the scheme ReMICSS uses.
* :class:`~repro.sharing.xor.XorScheme` -- the (n, n) perfect scheme built
  from one-time-pad XOR, the scheme the MICSS baseline is limited to.
* :class:`~repro.sharing.blakley.BlakleyScheme` -- Blakley's hyperplane
  scheme over a prime field, included because the paper grounds its model in
  Blakley's "courier mode" (Sec. II-B); it demonstrates that the protocol is
  agnostic to which threshold scheme generates the shares.

All schemes implement :class:`~repro.sharing.base.SecretSharingScheme` and
operate on ``bytes`` secrets, producing :class:`~repro.sharing.base.Share`
objects tagged with their index and the (k, m) parameters used.

The GF(2^8) schemes run on the vectorized kernels in
:mod:`repro.gf.batch` (whole-batch polynomial evaluation and Lagrange
interpolation); :mod:`repro.sharing.reference` keeps the byte-at-a-time
scalar oracle they are tested bit-identical against.
"""

from repro.sharing.base import (
    ReconstructionError,
    SecretSharingScheme,
    Share,
)
from repro.sharing.blakley import BlakleyScheme
from repro.sharing.ramp import RampScheme
from repro.sharing.shamir import ShamirScheme
from repro.sharing.xor import XorScheme

__all__ = [
    "ReconstructionError",
    "SecretSharingScheme",
    "Share",
    "ShamirScheme",
    "XorScheme",
    "BlakleyScheme",
    "RampScheme",
]
