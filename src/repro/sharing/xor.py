"""The (n, n) perfect scheme built from one-time-pad XOR.

This is the scheme the MICSS protocol is restricted to (Sec. V of the
paper): all ``m`` shares are required to reconstruct, so ``k`` must equal
``m``.  Shares 1..m-1 are uniform random pads and share m is the secret
XORed with all of them -- exactly Shannon's one-time pad generalised to
multiple pads, hence information-theoretically perfect.

Its presence lets the benchmarks compare the flexible ReMICSS protocol
against a faithful MICSS baseline whose only reachable configuration is
``κ = µ = n``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.sharing.base import (
    ReconstructionError,
    SecretSharingScheme,
    Share,
    check_share_group,
    validate_parameters,
)


class XorScheme(SecretSharingScheme):
    """Perfect (m, m) sharing via XOR pads; only supports ``k == m``."""

    name = "xor-perfect"

    def supports(self, k: int, m: int) -> bool:
        return super().supports(k, m) and k == m

    def split(
        self,
        secret: bytes,
        k: int,
        m: int,
        rng: np.random.Generator,
    ) -> List[Share]:
        validate_parameters(k, m)
        if k != m:
            raise ValueError(f"XOR perfect sharing requires k == m, got k={k}, m={m}")
        secret_vec = np.frombuffer(secret, dtype=np.uint8)
        n = len(secret_vec)
        shares = []
        running = secret_vec.copy()
        for index in range(1, m):
            pad = rng.integers(0, 256, size=n, dtype=np.uint8)
            running = np.bitwise_xor(running, pad)
            shares.append(Share(index=index, data=pad.tobytes(), k=k, m=m))
        shares.append(Share(index=m, data=running.tobytes(), k=k, m=m))
        return shares

    def reconstruct(self, shares: Sequence[Share]) -> bytes:
        k = check_share_group(shares)
        if len(shares) < shares[0].m:
            raise ReconstructionError(
                f"XOR perfect sharing needs all {shares[0].m} shares, got {len(shares)}"
            )
        del k  # all shares are required regardless of stored threshold
        lengths = {len(s.data) for s in shares}
        if len(lengths) != 1:
            raise ReconstructionError(f"shares have inconsistent lengths: {sorted(lengths)}")
        result = np.zeros(lengths.pop(), dtype=np.uint8)
        for share in shares:
            np.bitwise_xor(result, np.frombuffer(share.data, dtype=np.uint8), out=result)
        return result.tobytes()
