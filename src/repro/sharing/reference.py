"""Scalar reference oracle for the vectorized sharing pipeline.

Per-byte Shamir/ramp split and reconstruct written directly against the
scalar field (:mod:`repro.gf.gf256`) and generic polynomial code
(:mod:`repro.gf.poly`) -- one Horner evaluation / Lagrange interpolation
per byte, no numpy in the arithmetic.  Deliberately slow and obvious.

Two things make this module load-bearing rather than dead weight:

* **Equivalence oracle.**  The batch kernels in :mod:`repro.gf.batch`
  (and the schemes built on them) must match this module *byte for byte*
  under the same rng: leakage analyses of Shamir sharing assume exact
  field semantics, so a vectorization bug would silently invalidate the
  privacy model.  ``tests/test_sharing_batch_equiv.py`` asserts the
  equivalence; to keep it meaningful the randomness here is drawn with
  exactly the same single ``rng.integers`` call the production schemes
  use, so identical seeds yield identical coefficient matrices.
* **Benchmark baseline.**  ``benchmarks/bench_micro.py`` times this path
  against the batch path and commits the ratio to ``BENCH_micro.json``;
  the CI gate fails if the batch advantage regresses.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.gf.gf256 import GF256_FIELD
from repro.gf.poly import evaluate, lagrange_interpolate_at
from repro.sharing.base import (
    ReconstructionError,
    Share,
    check_share_group,
    validate_parameters,
)
from repro.sharing.ramp import _LENGTH, RampScheme, _vandermonde_inverse_rows


def scalar_shamir_split(
    secret: bytes,
    k: int,
    m: int,
    rng: np.random.Generator,
) -> List[Share]:
    """Byte-at-a-time Shamir split; rng-compatible with ``ShamirScheme``.

    Byte ``b`` of share ``x`` is the Horner evaluation of the degree-(k-1)
    polynomial whose constant term is ``secret[b]`` and whose higher
    coefficients come from the same single ``(k-1, len(secret))`` uniform
    draw the vectorized scheme makes.
    """
    validate_parameters(k, m)
    if m > 255:
        raise ValueError("GF(256) Shamir supports at most 255 shares")
    n = len(secret)
    if k > 1:
        random_block = rng.integers(0, 256, size=(k - 1, n), dtype=np.uint8)
    else:
        random_block = np.zeros((0, n), dtype=np.uint8)
    shares = []
    for x in range(1, m + 1):
        data = bytes(
            evaluate(
                GF256_FIELD,
                [secret[b]] + [int(random_block[j, b]) for j in range(k - 1)],
                x,
            )
            for b in range(n)
        )
        shares.append(Share(index=x, data=data, k=k, m=m))
    return shares


def scalar_shamir_reconstruct(shares: Sequence[Share]) -> bytes:
    """Byte-at-a-time Lagrange interpolation at x = 0."""
    k = check_share_group(shares)
    group = list(shares)[:k]
    lengths = {len(s.data) for s in group}
    if len(lengths) != 1:
        raise ReconstructionError(f"shares have inconsistent lengths: {sorted(lengths)}")
    size = lengths.pop()
    return bytes(
        lagrange_interpolate_at(
            GF256_FIELD,
            [(share.index, share.data[b]) for share in group],
            0,
        )
        for b in range(size)
    )


def scalar_evaluate_shares_at(shares: Sequence[Share], x: int) -> bytes:
    """Byte-at-a-time Lagrange evaluation at an arbitrary point ``x``.

    Scalar twin of :func:`repro.sharing.robust.evaluate_shares_at`.
    """
    xs = [share.index for share in shares]
    if len(set(xs)) != len(xs):
        raise ReconstructionError(f"duplicate share indices: {sorted(xs)}")
    size = len(shares[0].data)
    return bytes(
        lagrange_interpolate_at(
            GF256_FIELD,
            [(share.index, share.data[b]) for share in shares],
            x,
        )
        for b in range(size)
    )


def scalar_ramp_split(
    secret: bytes,
    k: int,
    m: int,
    rng: np.random.Generator,
    blocks: int = 2,
) -> List[Share]:
    """Byte-at-a-time (k, L, m) ramp split; rng-compatible with ``RampScheme``."""
    scheme = RampScheme(blocks=blocks)
    validate_parameters(k, m)
    if m > 255:
        raise ValueError("GF(256) ramp supports at most 255 shares")
    if k < blocks:
        raise ValueError(f"ramp with L={blocks} blocks needs k >= L, got k={k}")
    body = _LENGTH.pack(len(secret)) + secret
    size = scheme.share_size(len(secret))
    body = body.ljust(size * blocks, b"\0")
    secret_blocks = [body[j * size : (j + 1) * size] for j in range(blocks)]
    if k > blocks:
        random_block = rng.integers(0, 256, size=(k - blocks, size), dtype=np.uint8)
    else:
        random_block = np.zeros((0, size), dtype=np.uint8)
    shares = []
    for x in range(1, m + 1):
        data = bytes(
            evaluate(
                GF256_FIELD,
                [block[b] for block in secret_blocks]
                + [int(random_block[j, b]) for j in range(k - blocks)],
                x,
            )
            for b in range(size)
        )
        shares.append(Share(index=x, data=data, k=k, m=m))
    return shares


def scalar_ramp_reconstruct(shares: Sequence[Share], blocks: int = 2) -> bytes:
    """Byte-at-a-time ramp reconstruction via the inverse Vandermonde rows."""
    k = check_share_group(shares)
    group = list(shares)[:k]
    if k < blocks:
        raise ReconstructionError(f"ramp with L={blocks} blocks cannot have threshold {k}")
    lengths = {len(share.data) for share in group}
    if len(lengths) != 1:
        raise ReconstructionError(f"shares have inconsistent lengths: {sorted(lengths)}")
    size = lengths.pop()
    xs = [share.index for share in group]
    inverse_rows = _vandermonde_inverse_rows(xs, blocks)
    pieces = []
    for row in inverse_rows:
        pieces.append(
            bytes(
                _xor_reduce(
                    GF256_FIELD.mul(weight, share.data[b])
                    for weight, share in zip(row, group)
                )
                for b in range(size)
            )
        )
    body = b"".join(pieces)
    if len(body) < _LENGTH.size:
        raise ReconstructionError("ramp shares too short to carry a length prefix")
    (length,) = _LENGTH.unpack_from(body)
    if length > len(body) - _LENGTH.size:
        raise ReconstructionError("reconstructed length prefix is corrupt")
    return body[_LENGTH.size : _LENGTH.size + length]


def _xor_reduce(values) -> int:
    acc = 0
    for value in values:
        acc ^= value
    return acc


def scalar_xor_split(
    secret: bytes,
    k: int,
    m: int,
    rng: np.random.Generator,
) -> List[Share]:
    """Byte-at-a-time XOR (m, m) split; rng-compatible with ``XorScheme``."""
    validate_parameters(k, m)
    if k != m:
        raise ValueError(f"XOR perfect sharing requires k == m, got k={k}, m={m}")
    n = len(secret)
    running = list(secret)
    shares = []
    for index in range(1, m):
        pad = rng.integers(0, 256, size=n, dtype=np.uint8)
        pad_bytes = pad.tobytes()
        running = [r ^ p for r, p in zip(running, pad_bytes)]
        shares.append(Share(index=index, data=pad_bytes, k=k, m=m))
    shares.append(Share(index=m, data=bytes(running), k=k, m=m))
    return shares


def scalar_xor_reconstruct(shares: Sequence[Share]) -> bytes:
    """Byte-at-a-time XOR reconstruction (needs every share)."""
    check_share_group(shares)
    if len(shares) < shares[0].m:
        raise ReconstructionError(
            f"XOR perfect sharing needs all {shares[0].m} shares, got {len(shares)}"
        )
    lengths = {len(s.data) for s in shares}
    if len(lengths) != 1:
        raise ReconstructionError(f"shares have inconsistent lengths: {sorted(lengths)}")
    size = lengths.pop()
    return bytes(
        _xor_reduce(share.data[b] for share in shares) for b in range(size)
    )
