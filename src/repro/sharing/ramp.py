"""Linear ramp scheme: trading secrecy margin for share size.

Shannon's bound -- which the paper leans on for its ``H(Y) = H(X)`` rate
assumption (Sec. III-C) -- says *perfect* threshold schemes cannot have
shares smaller than the secret.  Ramp schemes relax perfection to beat the
bound: a (k, L, m) linear ramp packs ``L`` secret blocks into one
polynomial, so each share is ``1/L`` of the secret's size, at the cost of a
graded secrecy guarantee:

* **any k shares** reconstruct the secret (same as Shamir);
* **k − L or fewer shares** reveal nothing (information-theoretic);
* between ``k − L + 1`` and ``k − 1`` shares, *partial* information leaks
  (an L-fold reduction of the candidate space per extra share).

With ``L = 1`` this degenerates to exactly Shamir's scheme.  The scheme
exists in this library to quantify the paper's rate assumption: plugging a
ramp scheme into the protocol multiplies the achievable source-symbol rate
by L while weakening the privacy semantics from "κ − 1 interceptions leak
nothing" to "κ − L interceptions leak nothing" -- an ablation benchmarked
in ``benchmarks/bench_ramp.py``.

Construction: for each byte position, a random polynomial of degree
``k − 1`` over GF(2^8) whose first L coefficients are the L secret block
bytes and whose remaining ``k − L`` coefficients are uniform; share i is
the evaluation at x = i.  Reconstruction inverts the k x k Vandermonde
system once per share-index set and applies it to all byte positions
vectorised.
"""

from __future__ import annotations

import struct
from typing import List, Sequence

import numpy as np

from repro.gf.batch import eval_poly_at_points, gf_mul_vec
from repro.sharing.base import (
    ReconstructionError,
    SecretSharingScheme,
    Share,
    check_share_group,
    validate_parameters,
)
from repro.sharing.shamir import _gf_inv, _gf_mul, _share_matrix

_LENGTH = struct.Struct(">I")


def _vandermonde_inverse_rows(xs: Sequence[int], rows: int) -> List[List[int]]:
    """First ``rows`` rows of the inverse Vandermonde matrix for points xs.

    Row j maps share values (f(x_1), ..., f(x_k)) to coefficient c_j.
    Computed by Gaussian elimination over GF(2^8) on the k x k system.
    """
    k = len(xs)
    # Build V with V[i][j] = xs[i] ** j.
    matrix = [[1] * k for _ in range(k)]
    for i, x in enumerate(xs):
        acc = 1
        for j in range(k):
            matrix[i][j] = acc
            acc = _gf_mul(acc, x)
    # Augment with identity and eliminate: solves V^T? No -- we need
    # coefficients c with V c = y, i.e. c = V^{-1} y; eliminate on V.
    aug = [row[:] + [1 if r == c else 0 for c in range(k)] for r, row in enumerate(matrix)]
    for col in range(k):
        pivot = next((r for r in range(col, k) if aug[r][col] != 0), None)
        if pivot is None:  # pragma: no cover - Vandermonde is invertible
            raise ReconstructionError("degenerate share index set")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv = _gf_inv(aug[col][col])
        aug[col] = [_gf_mul(value, inv) for value in aug[col]]
        for r in range(k):
            if r != col and aug[r][col] != 0:
                factor = aug[r][col]
                aug[r] = [a ^ _gf_mul(factor, b) for a, b in zip(aug[r], aug[col])]
    return [aug[j][k:] for j in range(rows)]


class RampScheme(SecretSharingScheme):
    """(k, L, m) linear ramp sharing over GF(2^8).

    Args:
        blocks: the ramp parameter L >= 1; shares are ~1/L of the secret
            size and k - L shares are information-theoretically useless.

    Notes:
        Requires ``k >= blocks`` (otherwise fewer than zero shares would
        have to leak nothing).  Secrets are length-prefixed and padded to a
        multiple of L internally, so arbitrary byte strings round-trip.
    """

    MAX_SHARES = 255

    def __init__(self, blocks: int = 2):
        if blocks < 1:
            raise ValueError(f"blocks must be at least 1, got {blocks}")
        self.blocks = blocks
        self.name = "shamir-gf256" if blocks == 1 else f"ramp-gf256-L{blocks}"

    def supports(self, k: int, m: int) -> bool:
        return (
            super().supports(k, m)
            and m <= self.MAX_SHARES
            and k >= self.blocks
        )

    def share_size(self, secret_len: int) -> int:
        """Share payload size for a secret of ``secret_len`` bytes."""
        body = _LENGTH.size + secret_len
        return -(-body // self.blocks)  # ceil division

    def split(
        self,
        secret: bytes,
        k: int,
        m: int,
        rng: np.random.Generator,
    ) -> List[Share]:
        validate_parameters(k, m)
        if m > self.MAX_SHARES:
            raise ValueError(f"GF(256) ramp supports at most {self.MAX_SHARES} shares")
        if k < self.blocks:
            raise ValueError(
                f"ramp with L={self.blocks} blocks needs k >= L, got k={k}"
            )
        body = _LENGTH.pack(len(secret)) + secret
        size = self.share_size(len(secret))
        body = body.ljust(size * self.blocks, b"\0")
        # Coefficient matrix: rows 0..L-1 are the secret blocks, rows
        # L..k-1 a single uniform draw; one Horner pass covers all m points.
        coeffs = np.empty((k, size), dtype=np.uint8)
        coeffs[: self.blocks] = np.frombuffer(body, dtype=np.uint8).reshape(
            self.blocks, size
        )
        if k > self.blocks:
            coeffs[self.blocks :] = rng.integers(
                0, 256, size=(k - self.blocks, size), dtype=np.uint8
            )
        evaluations = eval_poly_at_points(coeffs, np.arange(1, m + 1, dtype=np.uint8))
        return [
            Share(index=x, data=evaluations[x - 1].tobytes(), k=k, m=m)
            for x in range(1, m + 1)
        ]

    def reconstruct(self, shares: Sequence[Share]) -> bytes:
        k = check_share_group(shares)
        group = list(shares)[:k]
        if k < self.blocks:
            raise ReconstructionError(
                f"ramp with L={self.blocks} blocks cannot have threshold {k}"
            )
        matrix = _share_matrix(group)
        xs = [share.index for share in group]
        inverse_rows = _vandermonde_inverse_rows(xs, self.blocks)
        # Apply the L x k inverse-Vandermonde block to every byte position
        # at once: blocks[l] = xor_i rows[l, i] * share_i.
        rows = np.array(inverse_rows, dtype=np.uint8)
        products = gf_mul_vec(rows[:, :, None], matrix[None, :, :])
        body = np.bitwise_xor.reduce(products, axis=1).tobytes()
        if len(body) < _LENGTH.size:
            raise ReconstructionError("ramp shares too short to carry a length prefix")
        (length,) = _LENGTH.unpack_from(body)
        if length > len(body) - _LENGTH.size:
            raise ReconstructionError("reconstructed length prefix is corrupt")
        return body[_LENGTH.size : _LENGTH.size + length]
