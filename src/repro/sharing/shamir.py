"""Shamir's threshold scheme over GF(2^8), batched over whole datagrams.

Each byte of the secret is an independent GF(2^8) secret: byte ``b`` of
share ``i`` is ``f_b(i)`` where ``f_b`` is a random degree-(k-1) polynomial
with constant term ``secret[b]``.  Every share therefore has exactly the
length of the secret, which is the optimal ``H(Y) = H(X)`` case the paper's
rate model assumes (Sec. III-C).

``split`` evaluates *all m share points for all payload bytes* in one
vectorized Horner pass over a ``(k, n)`` coefficient matrix, and
``reconstruct`` interpolates the whole byte batch with one batched Lagrange
evaluation -- both through :mod:`repro.gf.batch`.  Coefficient sampling is
amortized into a single ``rng.integers`` draw.  The scalar path through
:mod:`repro.gf` (exposed as :mod:`repro.sharing.reference`) is the
reference oracle: the batch kernels are bit-identical to it byte for byte,
which ``tests/test_sharing_batch_equiv.py`` and the golden vectors in
``tests/test_gf_vectors.py`` pin down.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.gf.batch import eval_poly_at_points, lagrange_interpolate
from repro.gf.gf256 import _EXP, _LOG
from repro.sharing.base import (
    ReconstructionError,
    SecretSharingScheme,
    Share,
    check_share_group,
    validate_parameters,
)


def _gf_inv(a: int) -> int:
    """Scalar GF(2^8) inverse (used by the ramp scheme's linear algebra)."""
    if a == 0:
        raise ZeroDivisionError("inverse of zero in GF(256)")
    return _EXP[(255 - _LOG[a]) % 255]


def _gf_mul(a: int, b: int) -> int:
    """Scalar GF(2^8) product (used by the ramp scheme's linear algebra)."""
    if a == 0 or b == 0:
        return 0
    return _EXP[(_LOG[a] + _LOG[b]) % 255]


def _share_matrix(group: Sequence[Share]) -> np.ndarray:
    """Stack share payloads into a uint8 ``(t, n)`` matrix, validating lengths."""
    lengths = {len(s.data) for s in group}
    if len(lengths) != 1:
        raise ReconstructionError(f"shares have inconsistent lengths: {sorted(lengths)}")
    size = lengths.pop()
    matrix = np.empty((len(group), size), dtype=np.uint8)
    for i, share in enumerate(group):
        matrix[i] = np.frombuffer(share.data, dtype=np.uint8)
    return matrix


class ShamirScheme(SecretSharingScheme):
    """Byte-wise Shamir (k, m) threshold sharing over GF(2^8).

    Supports ``1 <= k <= m <= 255`` (share indices are nonzero field
    elements).  Splitting an empty secret yields empty shares; this is legal
    and round-trips, which the protocol relies on for zero-length datagrams.
    """

    name = "shamir-gf256"

    #: Largest usable multiplicity: indices are the 255 nonzero elements.
    MAX_SHARES = 255

    def supports(self, k: int, m: int) -> bool:
        return super().supports(k, m) and m <= self.MAX_SHARES

    def split(
        self,
        secret: bytes,
        k: int,
        m: int,
        rng: np.random.Generator,
    ) -> List[Share]:
        validate_parameters(k, m)
        if m > self.MAX_SHARES:
            raise ValueError(f"GF(256) Shamir supports at most {self.MAX_SHARES} shares")
        secret_vec = np.frombuffer(secret, dtype=np.uint8)
        n = len(secret_vec)
        # coeffs[0] is the secret; coeffs[1..k-1] are uniform random bytes,
        # drawn once for the whole batch.
        coeffs = np.empty((k, n), dtype=np.uint8)
        coeffs[0] = secret_vec
        if k > 1:
            coeffs[1:] = rng.integers(0, 256, size=(k - 1, n), dtype=np.uint8)
        # One vectorized Horner pass: row x-1 is share x of every byte.
        evaluations = eval_poly_at_points(coeffs, np.arange(1, m + 1, dtype=np.uint8))
        return [
            Share(index=x, data=evaluations[x - 1].tobytes(), k=k, m=m)
            for x in range(1, m + 1)
        ]

    def reconstruct(self, shares: Sequence[Share]) -> bytes:
        k = check_share_group(shares)
        group = list(shares)[:k]
        matrix = _share_matrix(group)
        xs = np.array([s.index for s in group], dtype=np.uint8)
        # Batched Lagrange interpolation at x = 0 across every byte position.
        return lagrange_interpolate(xs, matrix, 0).tobytes()

    def split_many(
        self,
        secrets: Sequence[bytes],
        k: int,
        m: int,
        rng: np.random.Generator,
    ) -> List[List[Share]]:
        """Split a batch of secrets in one vectorized pass.

        Bit-identical to calling :meth:`split` per secret with the same rng
        (the random block for each secret is drawn in the same order), but
        the m-point polynomial evaluation runs once over the concatenated
        byte batch instead of once per datagram.
        """
        validate_parameters(k, m)
        if m > self.MAX_SHARES:
            raise ValueError(f"GF(256) Shamir supports at most {self.MAX_SHARES} shares")
        if not secrets:
            return []
        sizes = [len(secret) for secret in secrets]
        total = sum(sizes)
        coeffs = np.empty((k, total), dtype=np.uint8)
        coeffs[0] = np.frombuffer(b"".join(secrets), dtype=np.uint8)
        if k > 1:
            # Preserve the per-secret draw order of the scalar loop so the
            # batch is seed-for-seed identical to sequential split() calls.
            offset = 0
            for size in sizes:
                coeffs[1:, offset : offset + size] = rng.integers(
                    0, 256, size=(k - 1, size), dtype=np.uint8
                )
                offset += size
        evaluations = eval_poly_at_points(coeffs, np.arange(1, m + 1, dtype=np.uint8))
        batches: List[List[Share]] = []
        offset = 0
        for size in sizes:
            block = evaluations[:, offset : offset + size]
            batches.append(
                [
                    Share(index=x, data=block[x - 1].tobytes(), k=k, m=m)
                    for x in range(1, m + 1)
                ]
            )
            offset += size
        return batches

    def reconstruct_many(self, groups: Sequence[Sequence[Share]]) -> List[bytes]:
        """Reconstruct many share groups, batching groups with equal geometry.

        Groups whose (share-index tuple, payload length) agree are stacked
        and interpolated through a single batched Lagrange pass; output
        order matches the input order and is bit-identical to calling
        :meth:`reconstruct` per group.
        """
        prepared = []
        for group in groups:
            k = check_share_group(group)
            chosen = list(group)[:k]
            matrix = _share_matrix(chosen)
            xs = tuple(s.index for s in chosen)
            prepared.append((xs, matrix))
        # Bucket by geometry, preserving first-seen bucket order.
        buckets: "dict[tuple, list[int]]" = {}
        for position, (xs, matrix) in enumerate(prepared):
            buckets.setdefault((xs, matrix.shape[1]), []).append(position)
        results: List[bytes] = [b""] * len(prepared)
        for (xs, size), positions in buckets.items():
            stacked = np.concatenate(
                [prepared[position][1] for position in positions], axis=1
            )
            flat = lagrange_interpolate(np.array(xs, dtype=np.uint8), stacked, 0)
            for slot, position in enumerate(positions):
                results[position] = flat[slot * size : (slot + 1) * size].tobytes()
        return results
