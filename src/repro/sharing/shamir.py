"""Shamir's threshold scheme over GF(2^8), vectorised byte-wise.

Each byte of the secret is an independent GF(2^8) secret: byte ``b`` of
share ``i`` is ``f_b(i)`` where ``f_b`` is a random degree-(k-1) polynomial
with constant term ``secret[b]``.  Every share therefore has exactly the
length of the secret, which is the optimal ``H(Y) = H(X)`` case the paper's
rate model assumes (Sec. III-C).

The per-byte arithmetic is vectorised with numpy log/antilog table lookups
so the reference protocol can share full datagrams at simulator speed.  A
scalar path through :mod:`repro.gf` exists for cross-checking in tests.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.gf.gf256 import _EXP, _LOG
from repro.sharing.base import (
    ReconstructionError,
    SecretSharingScheme,
    Share,
    check_share_group,
    validate_parameters,
)

# Doubled antilog table lets us index EXP[log a + log b] without a modulo.
_NP_EXP = np.array(_EXP + _EXP, dtype=np.uint8)
_NP_LOG = np.array([0] + _LOG[1:], dtype=np.int32)  # log[0] is unused


def _mul_vec_scalar(vec: np.ndarray, scalar: int) -> np.ndarray:
    """Multiply a uint8 vector by a GF(2^8) scalar, element-wise."""
    if scalar == 0:
        return np.zeros_like(vec)
    out = _NP_EXP[_NP_LOG[vec] + _LOG[scalar]]
    # log tables cannot represent zero; mask zero inputs back to zero.
    return np.where(vec == 0, 0, out)


def _gf_inv(a: int) -> int:
    if a == 0:
        raise ZeroDivisionError("inverse of zero in GF(256)")
    return _EXP[(255 - _LOG[a]) % 255]


def _gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _EXP[(_LOG[a] + _LOG[b]) % 255]


class ShamirScheme(SecretSharingScheme):
    """Byte-wise Shamir (k, m) threshold sharing over GF(2^8).

    Supports ``1 <= k <= m <= 255`` (share indices are nonzero field
    elements).  Splitting an empty secret yields empty shares; this is legal
    and round-trips, which the protocol relies on for zero-length datagrams.
    """

    name = "shamir-gf256"

    #: Largest usable multiplicity: indices are the 255 nonzero elements.
    MAX_SHARES = 255

    def supports(self, k: int, m: int) -> bool:
        return super().supports(k, m) and m <= self.MAX_SHARES

    def split(
        self,
        secret: bytes,
        k: int,
        m: int,
        rng: np.random.Generator,
    ) -> List[Share]:
        validate_parameters(k, m)
        if m > self.MAX_SHARES:
            raise ValueError(f"GF(256) Shamir supports at most {self.MAX_SHARES} shares")
        secret_vec = np.frombuffer(secret, dtype=np.uint8)
        n = len(secret_vec)
        # coeffs[0] is the secret; coeffs[1..k-1] are uniform random bytes.
        coeffs = [secret_vec]
        if k > 1:
            random_block = rng.integers(0, 256, size=(k - 1, n), dtype=np.uint8)
            coeffs.extend(random_block)
        shares = []
        for x in range(1, m + 1):
            acc = coeffs[-1].copy()
            for j in range(k - 2, -1, -1):
                acc = _mul_vec_scalar(acc, x)
                np.bitwise_xor(acc, coeffs[j], out=acc)
            shares.append(Share(index=x, data=acc.tobytes(), k=k, m=m))
        return shares

    def reconstruct(self, shares: Sequence[Share]) -> bytes:
        k = check_share_group(shares)
        group = list(shares)[:k]
        lengths = {len(s.data) for s in group}
        if len(lengths) != 1:
            raise ReconstructionError(f"shares have inconsistent lengths: {sorted(lengths)}")
        # Lagrange interpolation at x = 0.  In characteristic 2 the basis
        # coefficient for share i is prod_{j != i} x_j / (x_i ^ x_j).
        xs = [s.index for s in group]
        result = np.zeros(lengths.pop(), dtype=np.uint8)
        for i, share in enumerate(group):
            coeff = 1
            for j, xj in enumerate(xs):
                if i == j:
                    continue
                coeff = _gf_mul(coeff, _gf_mul(xj, _gf_inv(xs[i] ^ xj)))
            term = _mul_vec_scalar(np.frombuffer(share.data, dtype=np.uint8), coeff)
            np.bitwise_xor(result, term, out=result)
        return result.tobytes()
