"""The paper's custom echo tool for measuring packet delay (Sec. VI-B).

iperf does not report per-datagram delay, so the paper builds a small
client/server pair: the client sends timestamped datagrams at a specified
rate, the server echoes each one back, and the client halves the measured
round-trip time (channel delays are applied in both directions, so RTT/2
is the one-way delay).  This module reproduces that tool over two protocol
nodes: timestamps ride in the symbol payload, so the measurement exercises
the full share/reconstruct path in both directions.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.core.channel import ChannelSet
from repro.core.schedule import ShareSchedule
from repro.netsim.rng import RngRegistry
from repro.netsim.trace import DelayStats
from repro.protocol.config import ProtocolConfig
from repro.protocol.remicss import PointToPointNetwork
from repro.workloads.setups import delay_to_ms

_TIMESTAMP = struct.Struct(">d")


@dataclass(frozen=True)
class EchoResult:
    """Outcome of one echo run.

    Attributes:
        mean_delay: mean one-way delay (RTT/2) in unit times, over echoes
            completing inside the measurement window.
        min_delay: smallest observed one-way delay.
        max_delay: largest observed one-way delay.
        echoes: number of completed round trips measured.
        sent: datagrams the client offered during the whole run.
    """

    mean_delay: float
    min_delay: float
    max_delay: float
    echoes: int
    sent: int

    @property
    def mean_delay_ms(self) -> float:
        """Mean one-way delay on the paper's millisecond axis."""
        return delay_to_ms(self.mean_delay)


def run_echo(
    channels: ChannelSet,
    config: ProtocolConfig,
    offered_rate: float,
    duration: float = 30.0,
    warmup: float = 5.0,
    seed: int = 1,
    schedule: Optional[ShareSchedule] = None,
    queue_limit: int = 16,
) -> EchoResult:
    """Run the echo client/server pair and report mean one-way delay.

    Requires real payloads (the timestamp rides in the symbol), so
    ``config.share_synthetic`` must be False.
    """
    if config.share_synthetic:
        raise ValueError("echo needs real payloads; disable share_synthetic")
    if offered_rate <= 0:
        raise ValueError(f"offered_rate must be positive, got {offered_rate}")
    registry = RngRegistry(seed)
    network = PointToPointNetwork(
        channels, config.symbol_size, registry, queue_limit=queue_limit
    )
    engine = network.engine
    client, server = network.node_pair(config, registry, schedule=schedule)

    stats = DelayStats()
    sent = {"count": 0}
    window = {"open": False}

    def on_server_deliver(seq: int, payload: Optional[bytes], delay: float) -> None:
        del seq, delay
        server.send(payload)  # echo the datagram back unchanged

    def on_client_deliver(seq: int, payload: Optional[bytes], delay: float) -> None:
        del seq, delay
        if not window["open"]:
            return
        (sent_at,) = _TIMESTAMP.unpack_from(payload)
        stats.record((engine.now - sent_at) / 2.0)

    server.on_deliver(on_server_deliver)
    client.on_deliver(on_client_deliver)

    interval = 1.0 / offered_rate
    end_time = warmup + duration
    padding = b"\0" * (config.symbol_size - _TIMESTAMP.size)

    def offer() -> None:
        payload = _TIMESTAMP.pack(engine.now) + padding
        if client.send(payload):
            sent["count"] += 1
        if engine.now + interval < end_time:
            engine.schedule(interval, offer)

    engine.schedule_at(0.0, offer)
    engine.schedule_at(warmup, lambda: window.__setitem__("open", True))
    # Let late echoes drain a little so the tail of the window is counted.
    engine.run_until(end_time + warmup)

    if stats.count == 0:
        raise RuntimeError("no echoes completed; offered rate may exceed capacity")
    return EchoResult(
        mean_delay=stats.mean,
        min_delay=stats.minimum,
        max_delay=stats.maximum,
        echoes=stats.count,
        sent=sent["count"],
    )
