"""An iperf-style unidirectional UDP benchmark over the protocol.

Mirrors how the paper measures rate and loss: offer datagrams at a fixed
rate for a fixed time, let the system warm up, then report the achieved
delivery rate and the fraction of transmitted datagrams lost over the
measurement window (Sec. VI-A and VI-B).

Offered load above capacity is shed at the sender's source queue, exactly
like an over-offered UDP socket; source drops are reported separately and
do *not* count as network loss (iperf's loss figure is receiver-side).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.channel import ChannelSet
from repro.core.planner import Requirements
from repro.core.schedule import ShareSchedule
from repro.adversary.active.plan import AttackPlan
from repro.netsim.faults import FaultPlan
from repro.netsim.host import CpuModel
from repro.netsim.rng import RngRegistry
from repro.netsim.trace import DelayStats, RateMeter
from repro.obs.instrument import (
    Observability,
    instrument_attack,
    instrument_network,
    instrument_node,
    instrument_resilience,
)
from repro.protocol.config import ProtocolConfig
from repro.protocol.remicss import PointToPointNetwork
from repro.protocol.resilience import ResilienceConfig, ResilienceManager
from repro.workloads.setups import delay_to_ms, rate_to_mbps


@dataclass(frozen=True)
class IperfResult:
    """Outcome of one iperf-style run.

    Attributes:
        achieved_rate: delivered source symbols per unit time.
        offered_rate: offered source symbols per unit time.
        loss_fraction: 1 - delivered/transmitted over the window (network
            loss; excludes sender-side source-queue drops).
        symbols_transmitted: symbols the protocol actually sent in-window.
        symbols_delivered: symbols reconstructed in-window.
        source_drops: symbols shed at the source queue (whole run).
        sender_stats: raw sender counters (whole run).
        receiver_stats: raw receiver counters (whole run).
        delay_stats: one-way source-to-reconstruction delay over the
            measurement window (unit times).
        fault_summary: applied fault-event summary when a fault plan was
            injected, else ``None``.
        attack_summary: applied attack-event summary (incl. the
            adversary's stat ledger) when an attack plan was armed, else
            ``None``.
        resilience_summary: resilience-layer summary (quarantines,
            failovers, repair counters, transitions) when the layer was
            enabled, else ``None``.
    """

    achieved_rate: float
    offered_rate: float
    loss_fraction: float
    symbols_transmitted: int
    symbols_delivered: int
    source_drops: int
    sender_stats: dict
    receiver_stats: dict
    delay_stats: DelayStats = field(default_factory=DelayStats)
    fault_summary: Optional[dict] = None
    attack_summary: Optional[dict] = None
    resilience_summary: Optional[dict] = None

    @property
    def achieved_mbps(self) -> float:
        """Achieved rate on the paper's Mbps axis."""
        return rate_to_mbps(self.achieved_rate)

    @property
    def loss_percent(self) -> float:
        return 100.0 * self.loss_fraction

    @property
    def mean_delay_ms(self) -> float:
        """Mean one-way delay on the paper's ms axis (0 if nothing delivered)."""
        return delay_to_ms(self.delay_stats.mean) if self.delay_stats.count else 0.0


def practical_max_rate(channels: ChannelSet, mu: float, symbol_size: int) -> float:
    """The protocol's achievable symbol rate: R_C less the header overhead.

    The paper's loss/delay experiments offer traffic "at the rate measured
    in the previous experiment" -- i.e. at the protocol's *achievable*
    rate, not the raw channel optimum.  Every share carries a fixed header,
    so the achievable symbol rate is R_C scaled by payload/packet size;
    offering above this only grows queues and distorts loss accounting.
    """
    from repro.core.rate import optimal_rate
    from repro.protocol.wire import HEADER_SIZE

    return optimal_rate(channels, mu) * symbol_size / (symbol_size + HEADER_SIZE)


def run_iperf(
    channels: ChannelSet,
    config: ProtocolConfig,
    offered_rate: float,
    duration: float = 50.0,
    warmup: float = 5.0,
    seed: int = 1,
    schedule: Optional[ShareSchedule] = None,
    sender_cpu_capacity: Optional[float] = None,
    receiver_cpu_capacity: Optional[float] = None,
    cpu_queue_limit: int = 64,
    queue_limit: int = 16,
    fault_plan: Optional[FaultPlan] = None,
    attack_plan: Optional[AttackPlan] = None,
    obs: Optional[Observability] = None,
    resilience: Optional[ResilienceConfig] = None,
    requirements: Optional[Requirements] = None,
    auth: "bool | bytes" = False,
) -> IperfResult:
    """Run one iperf-style measurement and return its results.

    Args:
        channels: the channel set (its loss/delay/rate shape the links).
        config: protocol configuration (use ``share_synthetic=True`` for
            pure rate/loss runs; they need no real share payloads).
        offered_rate: source symbols offered per unit time.
        duration: measurement window length (unit times).
        warmup: time before the window opens (queues fill, rates settle).
        seed: root seed for all randomness in the run.
        schedule: optional explicit share schedule (otherwise the dynamic
            (κ, µ) sampler from ``config`` is used).
        sender_cpu_capacity: finite sender CPU capacity (work units per
            unit time); ``None`` disables the CPU bottleneck.
        receiver_cpu_capacity: same for the receiver.
        cpu_queue_limit: receiver CPU queue bound (overload -> drops).
        queue_limit: per-link queue capacity in packets.
        fault_plan: optional deterministic fault timeline (see
            :mod:`repro.netsim.faults`) armed against the run's channels.
        attack_plan: optional active-adversary timeline (see
            :mod:`repro.adversary.active` and docs/ADVERSARY.md) armed
            against the run's channels; the adaptive attacker sees the
            channel set's own risk ranking.
        obs: optional :class:`~repro.obs.instrument.Observability` bundle;
            when given, the network, fault injector and both protocol
            nodes are instrumented and the caller snapshots
            ``obs.registry`` after the run (see docs/OBSERVABILITY.md).
        resilience: optional resilience tunables; when given, a
            :class:`~repro.protocol.resilience.ResilienceManager` protects
            the A -> B direction (quarantine, failover, repair -- see
            docs/RESILIENCE.md).
        requirements: deployment bounds for the resilience layer's LP
            failover; without them failover masks the dynamic selector
            instead of re-planning.
        auth: arm authenticated shares (docs/AUTH.md).  ``True`` derives
            the root key from ``seed``; a ``bytes`` value is used as the
            root key directly.  Overrides ``config.auth`` when set; the
            config must use real share payloads.
    """
    if offered_rate <= 0:
        raise ValueError(f"offered_rate must be positive, got {offered_rate}")
    if auth:
        from dataclasses import replace

        from repro.protocol.auth import AuthConfig, derive_root_key

        root_key = auth if isinstance(auth, (bytes, bytearray)) else derive_root_key(seed)
        config = replace(config, auth=AuthConfig(root_key=bytes(root_key)))
    registry = RngRegistry(seed)
    network = PointToPointNetwork(
        channels, config.symbol_size, registry, queue_limit=queue_limit
    )
    engine = network.engine
    injector = network.apply_faults(fault_plan) if fault_plan is not None else None
    attacker = (
        network.apply_attack(attack_plan, registry) if attack_plan is not None else None
    )
    sender_cpu = (
        CpuModel(engine, sender_cpu_capacity) if sender_cpu_capacity else None
    )
    receiver_cpu = (
        CpuModel(engine, receiver_cpu_capacity, queue_limit=cpu_queue_limit)
        if receiver_cpu_capacity
        else None
    )
    node_a, node_b = network.node_pair(
        config,
        registry,
        schedule=schedule,
        sender_cpu=sender_cpu,
        receiver_cpu=receiver_cpu,
    )
    manager = None
    if resilience is not None:
        manager = ResilienceManager(
            network, node_a, node_b, config, resilience, registry,
            requirements=requirements,
        )
    if obs is not None:
        instrument_network(obs, network)
        instrument_node(obs, node_a)
        instrument_node(obs, node_b)
        if manager is not None:
            instrument_resilience(obs, manager)
        if attacker is not None:
            instrument_attack(obs, attacker)

    meter = RateMeter()
    delays = DelayStats()
    measuring = {"open": False}

    def on_deliver(seq, payload, delay):
        meter.record(engine.now)
        if measuring["open"]:
            delays.record(delay)

    node_b.on_deliver(on_deliver)

    payload_rng = registry.stream("workload.payload")
    interval = 1.0 / offered_rate
    end_time = warmup + duration

    def offer() -> None:
        if config.share_synthetic:
            node_a.send(None)
        else:
            node_a.send(payload_rng.bytes(config.symbol_size))
        if engine.now + interval < end_time:
            engine.schedule(interval, offer)

    engine.schedule_at(0.0, offer)

    transmitted_at_open = {"value": 0}

    def open_window() -> None:
        meter.start(engine.now)
        measuring["open"] = True
        transmitted_at_open["value"] = node_a.sender.stats.symbols_sent

    engine.schedule_at(warmup, open_window)
    engine.run_until(end_time)
    meter.stop(engine.now)

    transmitted = node_a.sender.stats.symbols_sent - transmitted_at_open["value"]
    delivered = meter.count
    loss_fraction = 1.0 - delivered / transmitted if transmitted else 0.0
    return IperfResult(
        achieved_rate=meter.rate(),
        offered_rate=offered_rate,
        loss_fraction=max(0.0, loss_fraction),
        symbols_transmitted=transmitted,
        symbols_delivered=delivered,
        source_drops=node_a.sender.stats.source_drops,
        sender_stats=node_a.sender.stats.as_dict(),
        receiver_stats=node_b.receiver.stats.as_dict(),
        delay_stats=delays,
        fault_summary=injector.summary() if injector is not None else None,
        attack_summary=attacker.summary() if attacker is not None else None,
        resilience_summary=manager.summary() if manager is not None else None,
    )
