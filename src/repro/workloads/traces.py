"""Synthetic application-traffic generators.

The paper motivates the protocol with concrete application classes --
web browsing over CDNs, streaming music, interactive organising -- whose
traffic looks nothing like iperf's constant datagram stream.  This module
generates synthetic traces with the right *shape* for three such classes
and drives them through the transparent DIBS tunnel, so the protocol is
exercised under realistic datagram-size and interarrival distributions:

* **web**: request/response pairs; response sizes are heavy-tailed
  (bounded Pareto, the classic web-object model), arrivals bursty;
* **streaming**: constant-bitrate datagrams with tiny jitter;
* **messaging**: Poisson arrivals of small messages.

Each generator yields ``(time, payload)`` events; :func:`run_trace`
tunnels a trace between two protocol nodes and reports delivery/integrity
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple


import numpy as np

from repro.core.channel import ChannelSet
from repro.netsim.rng import RngRegistry
from repro.protocol.config import ProtocolConfig
from repro.protocol.dibs import DibsInterceptor
from repro.protocol.remicss import PointToPointNetwork

#: One trace event: (send time, application datagram payload).
TraceEvent = Tuple[float, bytes]


def _bounded_pareto(
    rng: np.random.Generator, shape: float, low: float, high: float
) -> float:
    """One draw from a Pareto distribution truncated to [low, high]."""
    u = rng.random()
    ha = high**shape
    la = low**shape
    return (-(u * (ha - la) - ha) / (ha * la)) ** (-1.0 / shape)


def web_trace(
    duration: float,
    rng: np.random.Generator,
    requests_per_unit: float = 2.0,
    min_response: int = 200,
    max_response: int = 20_000,
    pareto_shape: float = 1.2,
) -> Iterator[TraceEvent]:
    """Bursty request/response traffic with heavy-tailed response sizes."""
    now = 0.0
    while True:
        now += rng.exponential(1.0 / requests_per_unit)
        if now >= duration:
            return
        request = rng.bytes(int(rng.integers(60, 400)))
        yield (now, request)
        response_size = int(_bounded_pareto(rng, pareto_shape, min_response, max_response))
        response = rng.bytes(response_size)
        yield (now + float(rng.uniform(0.01, 0.05)), response)


def streaming_trace(
    duration: float,
    rng: np.random.Generator,
    datagram_size: int = 1000,
    datagrams_per_unit: float = 16.0,
    jitter: float = 0.005,
) -> Iterator[TraceEvent]:
    """Constant-bitrate media datagrams with small timing jitter."""
    interval = 1.0 / datagrams_per_unit
    count = int(duration / interval)
    for i in range(count):
        when = i * interval + float(rng.uniform(0.0, jitter))
        if when < duration:
            yield (when, rng.bytes(datagram_size))


def messaging_trace(
    duration: float,
    rng: np.random.Generator,
    messages_per_unit: float = 1.0,
    min_size: int = 20,
    max_size: int = 500,
) -> Iterator[TraceEvent]:
    """Poisson arrivals of small chat-style messages."""
    now = 0.0
    while True:
        now += rng.exponential(1.0 / messages_per_unit)
        if now >= duration:
            return
        yield (now, rng.bytes(int(rng.integers(min_size, max_size + 1))))


TRACE_GENERATORS = {
    "web": web_trace,
    "streaming": streaming_trace,
    "messaging": messaging_trace,
}


@dataclass(frozen=True)
class TraceResult:
    """Outcome of tunnelling one trace through the protocol.

    Attributes:
        sent: application datagrams offered.
        delivered: datagrams reassembled at the far end.
        intact: delivered datagrams whose bytes match what was sent.
        bytes_sent: application payload bytes offered.
        mean_size: mean offered datagram size.
    """

    sent: int
    delivered: int
    intact: int
    bytes_sent: int
    mean_size: float

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.sent if self.sent else 0.0


def run_trace(
    channels: ChannelSet,
    config: ProtocolConfig,
    kind: str = "web",
    duration: float = 30.0,
    seed: int = 1,
    drain: float = 20.0,
    **generator_kwargs,
) -> TraceResult:
    """Tunnel a synthetic application trace between two protocol nodes.

    Args:
        channels: the channel set shaping the simulated links.
        config: protocol configuration (real payload mode required).
        kind: "web", "streaming" or "messaging".
        duration: trace length in unit times.
        seed: root seed for the trace and the network.
        drain: extra time to let in-flight data arrive.
        **generator_kwargs: forwarded to the trace generator.
    """
    if config.share_synthetic:
        raise ValueError("trace workloads need real payloads")
    if kind not in TRACE_GENERATORS:
        raise ValueError(f"unknown trace kind {kind!r}; options: {sorted(TRACE_GENERATORS)}")
    registry = RngRegistry(seed)
    network = PointToPointNetwork(channels, config.symbol_size, registry)
    node_a, node_b = network.node_pair(config, registry)

    received: List[bytes] = []
    DibsInterceptor(node_b, on_datagram=received.append)
    tunnel = DibsInterceptor(node_a)

    events = sorted(
        TRACE_GENERATORS[kind](duration, registry.stream("trace"), **generator_kwargs),
        key=lambda event: event[0],
    )
    sent_payloads = [payload for _, payload in events]
    for when, payload in events:
        network.engine.schedule_at(when, tunnel.intercept, payload)
    network.engine.schedule_at(duration, tunnel.flush)
    network.engine.run_until(duration + drain)

    # In-order delivery lets us compare pairwise; drops shift the suffix,
    # so count prefix-intact matches conservatively.
    intact = sum(
        1 for sent, got in zip(sent_payloads, received) if sent == got
    )
    total_bytes = sum(len(p) for p in sent_payloads)
    return TraceResult(
        sent=len(sent_payloads),
        delivered=len(received),
        intact=intact,
        bytes_sent=total_bytes,
        mean_size=total_bytes / len(sent_payloads) if sent_payloads else 0.0,
    )
