"""The paper's four experimental setups and the unit conventions (Sec. VI).

The model is unit-agnostic ("symbols per unit time"), so the simulator
picks units that keep event counts manageable while mapping exactly onto
the paper's axes:

* a **symbol** is a 1250-byte datagram payload = 10,000 bits;
* one **unit time** is 10 ms.

Hence a channel rated X Mbps carries X symbols per unit time
(X Mbps = 100·X symbols/s = X symbols / 10 ms), i.e. ``rate == mbps``
numerically, and a delay of Y ms is Y/10 unit times.  Reports convert back
to Mbps and ms so every figure's axes match the paper's.

The four setups (five channels each):

=========  =======================================  ==========================
setup      rates (Mbps)                             extras (per direction)
=========  =======================================  ==========================
Identical  (R, R, R, R, R) for a chosen R           negligible loss and delay
Diverse    (5, 20, 60, 65, 100)                     negligible loss and delay
Lossy      (5, 20, 60, 65, 100)                     loss (1, .5, 1, 2, 3) %
Delayed    (5, 20, 60, 65, 100)                     delay (2.5, .25, 12.5, 5, .5) ms
=========  =======================================  ==========================

The paper's rate/loss/delay experiments do not exercise privacy, so the
setups carry a default risk vector (0.1 per channel) used only by the
privacy validation tests and examples; pass ``risks=...`` to override.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.channel import ChannelSet
from repro.netsim.faults import CANONICAL_SCENARIOS, FaultPlan, canonical_plan

#: Symbol payload size in bytes (10,000 bits).
SYMBOL_SIZE = 1250

#: Milliseconds per simulator unit time.
MS_PER_UNIT = 10.0

#: Default per-channel risk for setups (the rate/loss/delay experiments
#: never consult it; privacy tests may override).
DEFAULT_RISK = 0.1

#: The Diverse rate profile in Mbps (Sec. VI).
DIVERSE_RATES_MBPS = (5.0, 20.0, 60.0, 65.0, 100.0)

#: The Lossy per-direction loss percentages (Sec. VI).
LOSSY_LOSS_PERCENT = (1.0, 0.5, 1.0, 2.0, 3.0)

#: The Delayed per-direction added delays in ms (Sec. VI).
DELAYED_DELAY_MS = (2.5, 0.25, 12.5, 5.0, 0.5)


def mbps_to_rate(mbps: float) -> float:
    """Convert Mbps to symbols per unit time (numerically the identity)."""
    return mbps * 1e6 / (SYMBOL_SIZE * 8) * (MS_PER_UNIT / 1000.0)


def rate_to_mbps(rate: float) -> float:
    """Convert symbols per unit time back to Mbps."""
    return rate * (SYMBOL_SIZE * 8) / 1e6 / (MS_PER_UNIT / 1000.0)


def ms_to_delay(ms: float) -> float:
    """Convert milliseconds to simulator unit times."""
    return ms / MS_PER_UNIT


def delay_to_ms(delay: float) -> float:
    """Convert simulator unit times to milliseconds."""
    return delay * MS_PER_UNIT


def _build(
    rates_mbps: Sequence[float],
    loss_percent: Sequence[float],
    delays_ms: Sequence[float],
    risks: Optional[Sequence[float]],
) -> ChannelSet:
    n = len(rates_mbps)
    if risks is None:
        risks = [DEFAULT_RISK] * n
    return ChannelSet.from_vectors(
        risks=list(risks),
        losses=[p / 100.0 for p in loss_percent],
        delays=[ms_to_delay(ms) for ms in delays_ms],
        rates=[mbps_to_rate(mbps) for mbps in rates_mbps],
        names=[f"ch{i}" for i in range(n)],
    )


def identical_setup(
    mbps: float = 100.0,
    n: int = 5,
    risks: Optional[Sequence[float]] = None,
) -> ChannelSet:
    """The Identical setup: n equal channels at ``mbps`` each."""
    if mbps <= 0:
        raise ValueError(f"channel rate must be positive, got {mbps}")
    return _build([mbps] * n, [0.0] * n, [0.0] * n, risks)


def diverse_setup(risks: Optional[Sequence[float]] = None) -> ChannelSet:
    """The Diverse setup: 5, 20, 60, 65, 100 Mbps, negligible loss/delay."""
    n = len(DIVERSE_RATES_MBPS)
    return _build(DIVERSE_RATES_MBPS, [0.0] * n, [0.0] * n, risks)


def lossy_setup(risks: Optional[Sequence[float]] = None) -> ChannelSet:
    """The Lossy setup: Diverse rates with 1, .5, 1, 2, 3 percent loss."""
    n = len(DIVERSE_RATES_MBPS)
    return _build(DIVERSE_RATES_MBPS, LOSSY_LOSS_PERCENT, [0.0] * n, risks)


def delayed_setup(risks: Optional[Sequence[float]] = None) -> ChannelSet:
    """The Delayed setup: Diverse rates with 2.5, .25, 12.5, 5, .5 ms delay."""
    n = len(DIVERSE_RATES_MBPS)
    return _build(DIVERSE_RATES_MBPS, [0.0] * n, DELAYED_DELAY_MS, risks)


#: Names of the canonical fault scenarios available to the testbed setups
#: (see :data:`repro.netsim.faults.CANONICAL_SCENARIOS`).
FAULT_SCENARIOS = tuple(sorted(CANONICAL_SCENARIOS))


def testbed_fault_plan(
    scenario: str,
    start_ms: float = 100.0,
    stop_ms: float = 250.0,
    channel: Optional[int] = None,
    **overrides,
) -> FaultPlan:
    """A canonical fault scenario in the testbed's units.

    Times are given on the paper's millisecond axis and converted to
    simulator unit times; scenario-specific overrides (e.g. ``period`` for
    the flap, ``p_bad`` for the burst) are forwarded in unit times.

    The ``delay_spike`` scenario also accepts ``delay_ms``/``baseline_ms``
    overrides, converted here.
    """
    kwargs = dict(overrides)
    if scenario == "delay_spike":
        if "delay_ms" in kwargs:
            kwargs["delay"] = ms_to_delay(kwargs.pop("delay_ms"))
        if "baseline_ms" in kwargs:
            kwargs["baseline"] = ms_to_delay(kwargs.pop("baseline_ms"))
    if channel is not None:
        kwargs["channel"] = channel
    return canonical_plan(
        scenario, ms_to_delay(start_ms), ms_to_delay(stop_ms), **kwargs
    )


#: Names of the canonical attack scenarios available to the testbed setups
#: (see :data:`repro.adversary.active.CANONICAL_ATTACKS`).
ATTACK_SCENARIOS = (
    "corruption_storm",
    "forged_injection",
    "replay_flood",
    "targeted_corruption",
    "targeted_partition",
)


def testbed_attack_plan(
    scenario: str,
    start_ms: float = 100.0,
    stop_ms: float = 250.0,
    channel: Optional[int] = None,
    **overrides,
):
    """A canonical attack scenario in the testbed's units.

    Times are on the paper's millisecond axis, converted to simulator unit
    times; scenario-specific overrides (e.g. ``rate``/``mode`` for the
    corruption storm, ``budget``/``width`` for the adaptive partition) are
    forwarded untouched.  Imported lazily so the workloads layer has no
    hard dependency on the adversary package.
    """
    from repro.adversary.active.scenarios import canonical_attack

    kwargs = dict(overrides)
    if channel is not None:
        kwargs["channel"] = channel
    return canonical_attack(
        scenario, ms_to_delay(start_ms), ms_to_delay(stop_ms), **kwargs
    )
