"""Workloads and the paper's experimental setups.

* :mod:`repro.workloads.setups` -- the four channel configurations of
  Sec. VI (Identical, Diverse, Lossy, Delayed) plus the unit conventions
  that map the paper's Mbps/ms axes onto simulator units;
* :mod:`repro.workloads.iperf` -- an iperf-style unidirectional UDP
  benchmark: offered datagram load at a fixed rate, measuring achieved
  rate and datagram loss over a warmed-up window;
* :mod:`repro.workloads.echo` -- the paper's custom echo tool: timestamped
  datagrams echoed back by the far node, reporting mean RTT/2;
* :mod:`repro.workloads.fleet` -- the fleet-scale multi-tenant workload
  (many flows, DRR-fair multiplexing, sharded execution; docs/FLEET.md).
"""

from repro.workloads.echo import EchoResult, run_echo
from repro.workloads.fleet import run_fleet
from repro.workloads.iperf import IperfResult, run_iperf
from repro.workloads.setups import (
    MS_PER_UNIT,
    SYMBOL_SIZE,
    delayed_setup,
    diverse_setup,
    identical_setup,
    lossy_setup,
    mbps_to_rate,
    ms_to_delay,
    rate_to_mbps,
)

__all__ = [
    "SYMBOL_SIZE",
    "MS_PER_UNIT",
    "mbps_to_rate",
    "rate_to_mbps",
    "ms_to_delay",
    "identical_setup",
    "diverse_setup",
    "lossy_setup",
    "delayed_setup",
    "run_iperf",
    "IperfResult",
    "run_echo",
    "EchoResult",
    "run_fleet",
]
