"""The fleet workload: a multi-tenant many-flow run in one call.

:func:`run_fleet` synthesizes a deterministic fleet (see
:func:`repro.fleet.spec.synthesize_fleet`), executes it through
:class:`~repro.fleet.runner.FleetRunner`, and returns the merged
:class:`~repro.fleet.runner.FleetReport`.  This is the engine behind
``repro fleet`` and ``benchmarks/bench_fleet.py``; the docs live in
docs/FLEET.md.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.fleet import FleetReport, FleetRunner, synthesize_fleet

__all__ = ["run_fleet"]


def run_fleet(
    flows: int = 256,
    shards: int = 1,
    flows_per_cell: int = 32,
    symbols_per_flow: int = 4,
    flow_rate: float = 4.0,
    channels: int = 4,
    loss: float = 0.0,
    delay: float = 0.05,
    rate: float = 64.0,
    symbol_size: int = 64,
    synthetic: bool = True,
    sender_batch_limit: int = 8,
    batch_reconstruct: bool = True,
    quantum: float = 1.0,
    queue_limit: int = 64,
    auth: bool = False,
    spec_id: str = "fleet/default",
    obs: Optional[Any] = None,
    cache: Optional[Any] = None,
    retries: int = 0,
) -> FleetReport:
    """Run a synthesized fleet of ``flows`` flows over ``shards`` workers.

    Args:
        flows: fleet size (flows are spread over the default gold /
            silver / bronze tenants).
        shards: worker processes; the report is byte-identical for any
            value (docs/FLEET.md).
        flows_per_cell: flows sharing one simulated channel set.
        symbols_per_flow: source symbols each flow offers.
        flow_rate: per-flow offered rate (symbols per unit time).
        channels, loss, delay, rate: the per-cell channel shape.
        symbol_size: payload bytes per source symbol.
        synthetic: True skips real share payloads (pure scale runs);
            False splits and reconstructs real secrets.
        sender_batch_limit: symbols per ``split_many`` call on the send
            hot path (bit-identical to 1; see docs/FLEET.md).
        batch_reconstruct: coalesce same-instant reconstructions.
        auth: arm authenticated shares per cell (requires
            ``synthetic=False``; tenant flows get isolated per-flow MAC
            keys -- see docs/AUTH.md).
        quantum: DRR credit per visit (symbols).
        queue_limit: per-flow mux queue bound.
        spec_id: sweep spec id (part of every cell's seed derivation).
        obs: optional Observability for ``fleet_*`` metrics.
        cache: optional sweep result cache.
        retries: extra attempts per failed cell.
    """
    fleet = synthesize_fleet(flows, rate=flow_rate, symbols=symbols_per_flow)
    runner = FleetRunner(
        shards=shards,
        flows_per_cell=flows_per_cell,
        retries=retries,
        cache=cache,
        obs=obs,
    )
    return runner.run(
        fleet,
        spec_id=spec_id,
        channels=channels,
        loss=loss,
        delay=delay,
        rate=rate,
        symbol_size=symbol_size,
        synthetic=synthetic,
        sender_batch_limit=sender_batch_limit,
        batch_reconstruct=batch_reconstruct,
        quantum=quantum,
        queue_limit=queue_limit,
        auth=auth,
    )
