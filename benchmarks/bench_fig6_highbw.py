"""Figure 6 benchmark: increasing channel rate, κ = µ = 1 (CPU-bound)."""

from conftest import run_once

from repro.experiments.fig67 import run_fig6, saturation_point
from repro.experiments.reporting import rows_to_table


def test_fig6_high_bandwidth(benchmark):
    rows = run_once(benchmark, run_fig6, quick=True)
    print("\nFigure 6: Identical setup, increasing channel rate, κ = µ = 1")
    print(rows_to_table(rows, ["channel_mbps", "optimal_mbps", "achieved_mbps"], precision=1))
    point = saturation_point(rows)
    print(f"level-off at ~{point} Mbps/channel (paper: ~150 Mbps/channel)")
    # Tracks optimal at 100 Mbps, then levels off around 750 Mbps total.
    assert rows[0]["achieved_mbps"] > 0.95 * rows[0]["optimal_mbps"]
    plateau = [row["achieved_mbps"] for row in rows if row["channel_mbps"] >= 300.0]
    assert all(700.0 < value < 800.0 for value in plateau)
    assert point <= 300.0
