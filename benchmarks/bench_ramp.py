"""Ablation of the paper's H(Y) = H(X) assumption via ramp schemes.

The model assumes perfect threshold schemes, where shares are as large as
the secret, so rate is counted in symbols without conversion (Sec. III-C).
A (k, L, m) ramp scheme halves/quarters share size by weakening secrecy to
"k − L shares leak nothing".  These benches quantify both sides: the
throughput gained and the splitting cost, next to Shamir at the same
(k, m).
"""

import numpy as np
from conftest import run_once

from repro.core.channel import ChannelSet
from repro.netsim.rng import RngRegistry
from repro.protocol.config import ProtocolConfig
from repro.protocol.remicss import PointToPointNetwork
from repro.sharing.ramp import RampScheme
from repro.sharing.shamir import ShamirScheme

SYMBOL = bytes(range(256)) * 5  # 1280 bytes


def test_ramp_split_throughput(benchmark):
    scheme = RampScheme(blocks=2)
    rng = np.random.default_rng(0)
    shares = benchmark(scheme.split, SYMBOL, 3, 5, rng)
    assert len(shares) == 5
    assert len(shares[0].data) == scheme.share_size(len(SYMBOL))


def test_ramp_reconstruct_throughput(benchmark):
    scheme = RampScheme(blocks=2)
    shares = scheme.split(SYMBOL, 3, 5, np.random.default_rng(0))[:3]
    result = benchmark(scheme.reconstruct, shares)
    assert result == SYMBOL


def test_ramp_vs_shamir_wire_efficiency(benchmark):
    """End-to-end goodput: ramp L=2 halves bytes on the wire per symbol."""

    def run(scheme):
        channels = ChannelSet.from_vectors(
            risks=[0.0] * 3, losses=[0.0] * 3, delays=[0.005] * 3, rates=[40.0] * 3
        )
        registry = RngRegistry(3)
        network = PointToPointNetwork(channels, 1250, registry)
        config = ProtocolConfig(kappa=2.0, mu=3.0, symbol_size=1250, scheme=scheme)
        node_a, node_b = network.node_pair(config, registry)
        delivered = []
        node_b.on_deliver(lambda seq, payload, delay: delivered.append(seq))
        engine = network.engine
        payload = bytes(1250)

        def offer():
            node_a.send(payload)
            if engine.now < 20.0:
                engine.schedule(0.01, offer)  # 100 symbols/unit offered

        engine.schedule_at(0.0, offer)
        engine.run_until(25.0)
        return len(delivered) / 25.0

    def run_both():
        return run(ShamirScheme()), run(RampScheme(blocks=2))

    shamir_rate, ramp_rate = run_once(benchmark, run_both)
    print(
        f"\nRamp ablation: goodput with Shamir {shamir_rate:.1f} sym/unit vs "
        f"ramp L=2 {ramp_rate:.1f} sym/unit "
        f"(secrecy margin k-1=1 interception vs k-L=0)"
    )
    # Halved share size roughly doubles the channel-limited symbol rate.
    assert ramp_rate > 1.6 * shamir_rate
