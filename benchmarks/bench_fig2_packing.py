"""Figure 2 benchmark: the share-packing construction for r = (3, 4, 8)."""

from conftest import run_once

from repro.experiments.fig2 import FIG2_RATES, run_fig2
from repro.experiments.reporting import rows_to_table


def test_fig2_packing(benchmark):
    rows = run_once(benchmark, run_fig2)
    print("\nFigure 2: greedy share packing, r =", FIG2_RATES)
    print(
        rows_to_table(
            rows,
            ["mu", "symbols_packed", "optimal_floor", "share_usage", "fully_utilized"],
        )
    )
    # The packing exactly realises the Theorem 4 optimum at every mu.
    assert [row["symbols_packed"] for row in rows] == [15, 7, 3]
    assert all(row["symbols_packed"] == row["optimal_floor"] for row in rows)


def test_fig2_packing_scales(benchmark):
    """Packing cost for a larger synthetic channel set (microbenchmark)."""
    from repro.core.rate import pack_schedule

    rates = [((i * 37) % 50) + 1 for i in range(12)]
    columns, used = benchmark(pack_schedule, rates, 4)
    assert columns
    assert all(u <= r for u, r in zip(used, rates))
