"""The under-attack trend file: what each canonical adversary costs.

Runs every canonical attack scenario (docs/ADVERSARY.md) through the
seeded harness and records, per scenario, the delivery ratio, the
detected-corruption and replay-drop rates, and the delivery digest --
plus a ``deterministic`` flag from re-running one scenario and comparing
the full JSON rows byte-for-byte.

The committed ``BENCH_adversary.json`` at the repo root is generated from
a ``--quick`` run, and ``--check BENCH_adversary.json`` gates CI: the
simulation is deterministic end to end, so a fresh same-settings run must
match the committed rows *exactly* -- any drift means attack or protocol
behaviour changed and the trend file (and its PR) must say so.  Silent
corruption (``wrong_payloads > 0``) or a broken determinism flag fails
the gate regardless of the baseline.

Run under pytest-benchmark (``pytest benchmarks/bench_adversary.py -s``)
or directly::

    PYTHONPATH=src python benchmarks/bench_adversary.py --quick \\
        --check BENCH_adversary.json
"""

import argparse
import json
import sys

from conftest import run_once

from repro.adversary.active import canonical_attack, run_under_attack
from repro.adversary.active.scenarios import CANONICAL_ATTACKS

SCHEMA = "bench-adversary/1"
SEED = 11
WARMUP = 4.0
DURATION = 30.0
#: The attack window starts after warmup and outlives the offer window,
#: so every offered symbol contends with the adversary.
START = WARMUP


def measure(scenario: str, quick: bool = False) -> dict:
    """One scenario run; returns a JSON-safe row."""
    duration = DURATION / 2 if quick else DURATION
    stop = START + duration
    row = run_under_attack(
        canonical_attack(scenario, START, stop),
        duration=duration,
        warmup=WARMUP,
        seed=SEED,
    )
    receiver = row["receiver"]
    stats = row["attack"]["stats"]
    shares = receiver["shares_received"]
    return {
        "scenario": scenario,
        "delivery_ratio": round(row["delivery_ratio"], 6),
        "wrong_payloads": row["wrong_payloads"],
        "reconstruction_errors": receiver["reconstruction_errors"],
        "corrupt_detected_rate": (
            round(receiver["corrupt_shares_detected"] / shares, 6) if shares else 0.0
        ),
        "replay_dropped_rate": (
            round(receiver["replayed_shares_dropped"] / shares, 6) if shares else 0.0
        ),
        "shares_corrupted": stats["shares_corrupted"],
        "shares_forged": stats["shares_forged"],
        "packets_replayed": stats["packets_replayed"],
        "adaptive_jams": stats["adaptive_jams"],
        "targeted_corruptions": stats["targeted_corruptions"],
        "digest": row["digest"],
    }


def run_adversary_bench(quick: bool = False) -> dict:
    """All scenarios plus the same-seed determinism flag."""
    scenarios = {name: measure(name, quick=quick) for name in sorted(CANONICAL_ATTACKS)}
    replay = measure(sorted(CANONICAL_ATTACKS)[0], quick=quick)
    deterministic = json.dumps(replay, sort_keys=True) == json.dumps(
        scenarios[sorted(CANONICAL_ATTACKS)[0]], sort_keys=True
    )
    return {
        "schema": SCHEMA,
        "quick": quick,
        "seed": SEED,
        "deterministic": deterministic,
        "scenarios": scenarios,
    }


def check_against_baseline(results: dict, baseline: dict) -> "list[str]":
    """Exact-reproducibility gate; returns failure messages."""
    failures = []
    if not results["deterministic"]:
        failures.append("deterministic: same-seed replay diverged within this run")
    for name, row in sorted(results["scenarios"].items()):
        if row["wrong_payloads"]:
            failures.append(
                f"{name}: {row['wrong_payloads']} silently corrupted payloads delivered"
            )
    if baseline.get("schema") != results["schema"]:
        failures.append(
            f"schema: committed {baseline.get('schema')!r} != {results['schema']!r} "
            "(regenerate BENCH_adversary.json)"
        )
        return failures
    if baseline.get("quick") != results["quick"] or baseline.get("seed") != results["seed"]:
        failures.append(
            "settings: committed file was generated with different --quick/seed; "
            "rerun with matching settings"
        )
        return failures
    for name, row in sorted(results["scenarios"].items()):
        committed = baseline["scenarios"].get(name)
        if committed is None:
            failures.append(f"{name}: scenario missing from the committed file")
            continue
        if committed != row:
            drift = sorted(
                key for key in set(row) | set(committed)
                if row.get(key) != committed.get(key)
            )
            failures.append(
                f"{name}: run diverges from the committed rows on {drift} "
                "(the simulation is deterministic -- this is a behaviour "
                "change; regenerate BENCH_adversary.json and explain it)"
            )
    return failures


def test_adversary_scenarios(benchmark):
    results = run_once(benchmark, run_adversary_bench, quick=True)
    print("\n" + json.dumps(results, indent=2, sort_keys=True))
    assert results["deterministic"]
    for name, row in results["scenarios"].items():
        assert row["wrong_payloads"] == 0, name
        assert row["delivery_ratio"] > 0, name


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="halved window for CI smoke")
    parser.add_argument("--json", metavar="PATH", help="write results as JSON to PATH")
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed BENCH_adversary.json; exit 1 on drift",
    )
    args = parser.parse_args()
    results = run_adversary_bench(quick=args.quick)
    print(json.dumps(results, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check_against_baseline(results, baseline)
        if failures:
            for failure in failures:
                print(f"FAIL {failure}", file=sys.stderr)
            sys.exit(1)
        print("adversary bench check: ok")


if __name__ == "__main__":
    main()
