"""The under-attack trend file: what each canonical adversary costs.

Runs every canonical attack scenario (docs/ADVERSARY.md) through the
seeded harness -- unauthenticated and with authenticated shares armed
(docs/AUTH.md) -- and records, per scenario, the delivery ratio, the
detected-corruption / auth-failure / replay-drop rates, and the delivery
digest; plus a ``deterministic`` flag from re-running one scenario per
arm and comparing the full JSON rows byte-for-byte, and an
``auth_overhead`` block timing the sender hot path (split + tag + encode)
tagged vs untagged in MB/s.

The committed ``BENCH_adversary.json`` at the repo root is generated from
a ``--quick`` run, and ``--check BENCH_adversary.json`` gates CI: the
simulation is deterministic end to end, so a fresh same-settings run must
match the committed rows *exactly* -- any drift means attack or protocol
behaviour changed and the trend file (and its PR) must say so.  Silent
corruption (``wrong_payloads > 0`` in either arm) or a broken determinism
flag fails the gate regardless of the baseline.  ``auth_overhead`` is
wall-clock timing and is excluded from the exact-match comparison.

Run under pytest-benchmark (``pytest benchmarks/bench_adversary.py -s``)
or directly::

    PYTHONPATH=src python benchmarks/bench_adversary.py --quick \\
        --check BENCH_adversary.json
"""

import argparse
import json
import sys
import time

import numpy as np
from conftest import run_once

from repro.adversary.active import canonical_attack, run_under_attack
from repro.adversary.active.scenarios import CANONICAL_ATTACKS
from repro.protocol.auth import AuthConfig, ShareAuthenticator, derive_root_key
from repro.protocol.wire import SCHEME_IDS, encode_share
from repro.sharing.shamir import ShamirScheme

SCHEMA = "bench-adversary/2"
SEED = 11
WARMUP = 4.0
DURATION = 30.0
#: The attack window starts after warmup and outlives the offer window,
#: so every offered symbol contends with the adversary.
START = WARMUP


def measure(scenario: str, quick: bool = False, auth: bool = False) -> dict:
    """One scenario run; returns a JSON-safe row."""
    duration = DURATION / 2 if quick else DURATION
    stop = START + duration
    row = run_under_attack(
        canonical_attack(scenario, START, stop),
        duration=duration,
        warmup=WARMUP,
        seed=SEED,
        auth=auth,
    )
    receiver = row["receiver"]
    stats = row["attack"]["stats"]
    shares = receiver["shares_received"]
    out = {
        "scenario": scenario,
        "delivery_ratio": round(row["delivery_ratio"], 6),
        "wrong_payloads": row["wrong_payloads"],
        "reconstruction_errors": receiver["reconstruction_errors"],
        "corrupt_detected_rate": (
            round(receiver["corrupt_shares_detected"] / shares, 6) if shares else 0.0
        ),
        "replay_dropped_rate": (
            round(receiver["replayed_shares_dropped"] / shares, 6) if shares else 0.0
        ),
        "shares_corrupted": stats["shares_corrupted"],
        "shares_forged": stats["shares_forged"],
        "packets_replayed": stats["packets_replayed"],
        "adaptive_jams": stats["adaptive_jams"],
        "targeted_corruptions": stats["targeted_corruptions"],
        "digest": row["digest"],
    }
    if auth:
        # The auth arm's detection ledger: every forged/corrupted share
        # lands here instead of (or before) the robust decoder.
        out["auth_failed_rate"] = (
            round(receiver["auth_failed_shares"] / shares, 6) if shares else 0.0
        )
        out["auth_failed_shares"] = receiver["auth_failed_shares"]
        out["auth_verified_shares"] = receiver["auth_verified_shares"]
    return out


def measure_auth_overhead(quick: bool = False) -> dict:
    """Sender hot path (split + tag + encode) MB/s, tagged vs untagged.

    Wall-clock timing: reported for the trend file but *excluded* from the
    exact-match baseline comparison.
    """
    symbols = 64 if quick else 256
    symbol_size = 1250
    k, m = 2, 4
    scheme = ShamirScheme()
    scheme_id = SCHEME_IDS[scheme.name]
    authenticator = ShareAuthenticator(AuthConfig(root_key=derive_root_key(SEED)))
    rng = np.random.default_rng(SEED)
    payloads = [rng.bytes(symbol_size) for _ in range(symbols)]

    def pump(tagged: bool) -> float:
        split_rng = np.random.default_rng(SEED + 1)
        begin = time.perf_counter()
        for seq, payload in enumerate(payloads):
            for share in scheme.split(payload, k, m, split_rng):
                tag = (
                    authenticator.tag(0, seq, share, scheme_id) if tagged else None
                )
                encode_share(seq, share, scheme.name, tag=tag)
        return time.perf_counter() - begin

    pump(True)  # warm caches (GF tables, key chain) outside the clock
    # Best-of-N: the pump is milliseconds long, so single runs are noisy.
    untagged_elapsed = min(pump(False) for _ in range(5))
    tagged_elapsed = min(pump(True) for _ in range(5))
    megabytes = symbols * symbol_size / 1e6
    return {
        "symbols": symbols,
        "symbol_size": symbol_size,
        "k": k,
        "m": m,
        "untagged_mbps": round(megabytes / untagged_elapsed, 2),
        "tagged_mbps": round(megabytes / tagged_elapsed, 2),
        "tagged_over_untagged": round(tagged_elapsed / untagged_elapsed, 4),
    }


def run_adversary_bench(quick: bool = False) -> dict:
    """Both arms of every scenario plus the same-seed determinism flag."""
    names = sorted(CANONICAL_ATTACKS)
    scenarios = {name: measure(name, quick=quick) for name in names}
    auth_scenarios = {name: measure(name, quick=quick, auth=True) for name in names}
    deterministic = json.dumps(
        measure(names[0], quick=quick), sort_keys=True
    ) == json.dumps(scenarios[names[0]], sort_keys=True) and json.dumps(
        measure(names[0], quick=quick, auth=True), sort_keys=True
    ) == json.dumps(auth_scenarios[names[0]], sort_keys=True)
    return {
        "schema": SCHEMA,
        "quick": quick,
        "seed": SEED,
        "deterministic": deterministic,
        "scenarios": scenarios,
        "auth_scenarios": auth_scenarios,
        "auth_overhead": measure_auth_overhead(quick=quick),
    }


def check_against_baseline(results: dict, baseline: dict) -> "list[str]":
    """Exact-reproducibility gate; returns failure messages.

    Every scenario row in both arms must match the committed file exactly;
    ``auth_overhead`` is wall-clock timing and is not compared.
    """
    failures = []
    if not results["deterministic"]:
        failures.append("deterministic: same-seed replay diverged within this run")
    for arm in ("scenarios", "auth_scenarios"):
        for name, row in sorted(results[arm].items()):
            if row["wrong_payloads"]:
                failures.append(
                    f"{arm}/{name}: {row['wrong_payloads']} silently corrupted "
                    "payloads delivered"
                )
    if baseline.get("schema") != results["schema"]:
        failures.append(
            f"schema: committed {baseline.get('schema')!r} != {results['schema']!r} "
            "(regenerate BENCH_adversary.json)"
        )
        return failures
    if baseline.get("quick") != results["quick"] or baseline.get("seed") != results["seed"]:
        failures.append(
            "settings: committed file was generated with different --quick/seed; "
            "rerun with matching settings"
        )
        return failures
    for arm in ("scenarios", "auth_scenarios"):
        for name, row in sorted(results[arm].items()):
            committed = baseline.get(arm, {}).get(name)
            if committed is None:
                failures.append(f"{arm}/{name}: scenario missing from the committed file")
                continue
            if committed != row:
                drift = sorted(
                    key for key in set(row) | set(committed)
                    if row.get(key) != committed.get(key)
                )
                failures.append(
                    f"{arm}/{name}: run diverges from the committed rows on {drift} "
                    "(the simulation is deterministic -- this is a behaviour "
                    "change; regenerate BENCH_adversary.json and explain it)"
                )
    return failures


def test_adversary_scenarios(benchmark):
    results = run_once(benchmark, run_adversary_bench, quick=True)
    print("\n" + json.dumps(results, indent=2, sort_keys=True))
    assert results["deterministic"]
    for name, row in results["scenarios"].items():
        assert row["wrong_payloads"] == 0, name
        assert row["delivery_ratio"] > 0, name
    for name, row in results["auth_scenarios"].items():
        assert row["wrong_payloads"] == 0, name
        assert row["delivery_ratio"] > 0, name
    # Forged/corrupted shares must land in the auth ledger, and tagging
    # must actually cost something measurable but not dominate.
    assert results["auth_scenarios"]["forged_injection"]["auth_failed_shares"] > 0
    assert results["auth_scenarios"]["corruption_storm"]["auth_failed_shares"] > 0
    assert results["auth_overhead"]["tagged_mbps"] > 0
    assert results["auth_overhead"]["untagged_mbps"] > 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="halved window for CI smoke")
    parser.add_argument("--json", metavar="PATH", help="write results as JSON to PATH")
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed BENCH_adversary.json; exit 1 on drift",
    )
    args = parser.parse_args()
    results = run_adversary_bench(quick=args.quick)
    print(json.dumps(results, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check_against_baseline(results, baseline)
        if failures:
            for failure in failures:
                print(f"FAIL {failure}", file=sys.stderr)
            sys.exit(1)
        print("adversary bench check: ok")


if __name__ == "__main__":
    main()
