"""Resilience layer on/off under faults: what quarantine+failover+repair buys.

Runs the same LP-planned workload through two canonical fault scenarios
-- a mid-run outage of the heaviest channel (``partition_heal``) and a
bursty-loss episode (``burst``) -- once best-effort and once with the
resilience layer (see docs/RESILIENCE.md) enabled, and compares delivery
ratios.  The schedule comes from ``plan_max_rate`` under explicit
:class:`~repro.core.planner.Requirements`, so failover re-solves the LP
over the surviving channels and the privacy floor is enforced end to end.

The comparison also re-runs the resilient outage case and asserts the
JSON summary is byte-identical -- the layer's timers, jitter and repair
scheduling are all engine-driven and seeded, so same seed means same run.

Run under pytest-benchmark (``pytest benchmarks/bench_resilience.py -s``)
or directly (``--quick`` shrinks the window for CI smoke)::

    PYTHONPATH=src python benchmarks/bench_resilience.py
"""

import argparse
import json

from conftest import run_once

from repro.core.planner import Requirements, plan_max_rate
from repro.protocol.config import ProtocolConfig
from repro.protocol.resilience import ResilienceConfig
from repro.workloads.iperf import run_iperf
from repro.workloads.setups import diverse_setup
from repro.workloads.setups import testbed_fault_plan as fault_plan_for

SEED = 11
WARMUP = 5.0
DURATION = 30.0
#: Faults land inside the measurement window: [100 ms, 250 ms] on the
#: paper's axis = unit times [10, 25] with warmup 5 and duration 30.
START_MS, STOP_MS = 100.0, 250.0
#: Fault the 100 Mbps channel -- the one carrying the most shares, so the
#: outage is worth failing over from.
FAULT_CHANNEL = 4
#: Deployment bounds for the LP plan (and the failover re-solve).  At
#: this risk bound the Diverse setup plans kappa = mu = 2, so the privacy
#: floor the failover must hold is k >= 2.
REQUIREMENTS = Requirements(max_risk=0.02)
SCENARIOS = ("partition_heal", "burst")


def measure(scenario, resilient, quick=False):
    """One iperf-style run; returns a JSON-safe row."""
    duration = DURATION / 2 if quick else DURATION
    stop_ms = STOP_MS / 2 if quick else STOP_MS
    channels = diverse_setup()
    plan = plan_max_rate(channels, REQUIREMENTS)
    config = ProtocolConfig(share_synthetic=True)
    offered = 0.9 * plan.rate
    result = run_iperf(
        channels,
        config,
        offered_rate=offered,
        duration=duration,
        warmup=WARMUP,
        seed=SEED,
        schedule=plan.schedule,
        fault_plan=fault_plan_for(scenario, START_MS, stop_ms, channel=FAULT_CHANNEL),
        resilience=ResilienceConfig() if resilient else None,
        requirements=REQUIREMENTS if resilient else None,
    )
    row = {
        "scenario": scenario,
        "resilient": resilient,
        "delivery_ratio": result.achieved_rate / offered,
        "goodput_symbols_per_unit": result.achieved_rate,
        "loss_percent": result.loss_percent,
        "mean_delay_ms": result.mean_delay_ms,
        "symbols_delivered": result.symbols_delivered,
    }
    if result.resilience_summary is not None:
        summary = result.resilience_summary
        row["resilience"] = {
            key: summary[key]
            for key in (
                "quarantines", "reinstatements", "failovers", "restores",
                "nacks_received", "repair_shares_sent",
            )
        }
        row["failover_modes"] = summary["failover_modes"]
    return row


def compare_scenarios(quick=False):
    """Best-effort vs. resilient rows per scenario, plus a determinism check."""
    comparison = {}
    for scenario in SCENARIOS:
        off = measure(scenario, resilient=False, quick=quick)
        on = measure(scenario, resilient=True, quick=quick)
        comparison[scenario] = {
            "best_effort": off,
            "resilient": on,
            "delivery_ratio_gain": on["delivery_ratio"] - off["delivery_ratio"],
        }
    # Same seed, same bytes: re-run one resilient case and compare the
    # serialized rows (summaries include every transition and counter).
    replay = measure(SCENARIOS[0], resilient=True, quick=quick)
    comparison["deterministic"] = json.dumps(
        replay, sort_keys=True
    ) == json.dumps(comparison[SCENARIOS[0]]["resilient"], sort_keys=True)
    return comparison


def check(comparison):
    """The bench's qualitative claims; raises AssertionError when violated."""
    assert comparison["deterministic"], "same-seed replay diverged"
    outage = comparison["partition_heal"]
    # The headline claim: with a channel outage mid-run, quarantining the
    # dead channel and failing the schedule over to the survivors beats
    # stalling on readiness until the heal.
    assert (
        outage["resilient"]["delivery_ratio"]
        > outage["best_effort"]["delivery_ratio"]
    ), outage
    assert outage["resilient"]["resilience"]["quarantines"] >= 1, outage
    assert outage["resilient"]["resilience"]["failovers"] >= 1, outage
    for scenario in SCENARIOS:
        on = comparison[scenario]["resilient"]
        assert on["symbols_delivered"] > 0, scenario
        # Failover never degrades below the privacy floor (enforced in
        # repro.protocol.resilience.failover; summarized per run here).
        assert "degraded" not in on["failover_modes"], scenario


def test_resilience_vs_best_effort(benchmark):
    comparison = run_once(benchmark, compare_scenarios, quick=True)
    print("\n" + json.dumps(comparison, indent=2, sort_keys=True))
    check(comparison)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="halved window for CI smoke"
    )
    args = parser.parse_args()
    comparison = compare_scenarios(quick=args.quick)
    print(json.dumps(comparison, indent=2, sort_keys=True))
    check(comparison)


if __name__ == "__main__":
    main()
