"""Figure 5 benchmark: loss at maximum rate on the Lossy setup.

Solid lines in the paper are the Sec. IV-D LP optima; points are measured.
The assertions check tracking and the redundancy trend (loss falling as µ
grows away from κ).
"""

from conftest import run_once

from repro.experiments.fig5 import run_fig5
from repro.experiments.reporting import rows_to_table


def test_fig5_loss_at_max_rate(benchmark):
    rows = run_once(benchmark, run_fig5, quick=True)
    print("\nFigure 5: loss at maximum rate (Lossy setup)")
    print(rows_to_table(rows, ["kappa", "mu", "optimal_loss_pct", "actual_loss_pct"]))
    # Measured loss tracks the LP optimum (within a few points; the paper
    # notes implementation-specific spikes at isolated parameters).
    close = sum(
        1
        for row in rows
        if row["actual_loss_pct"] <= row["optimal_loss_pct"] + 3.0
    )
    assert close >= 0.8 * len(rows)
    # Redundancy trend: for kappa = 1, loss falls to ~zero by mu = n.
    k1 = [row for row in rows if row["kappa"] == 1.0]
    assert k1[-1]["actual_loss_pct"] < k1[0]["actual_loss_pct"]


def test_fig5_fixed_selector_pathology(benchmark):
    """Ablation: the naive fixed-order (fd-order) selector reproduces the
    paper's pathological interactions more strongly than headroom order."""
    rows = run_once(
        benchmark, run_fig5, kappas=(3.0,), mu_step=0.4,
        duration=8.0, warmup=2.0, selector_ordering="fixed",
    )
    print("\nFigure 5 ablation: fixed selector ordering, kappa = 3")
    print(rows_to_table(rows, ["kappa", "mu", "optimal_loss_pct", "actual_loss_pct"]))
    assert rows  # series produced; deviations are expected and reported
