"""Byzantine-tolerance ablation: what robust decoding costs and buys.

The PSMT lineage the paper builds on (Dolev et al.) requires tolerating
*corrupted* shares, not only lost ones.  ReMICSS here optionally waits for
``k + 2e`` shares and decodes robustly.  These benches measure the decode
cost and the end-to-end integrity difference on a tampering channel.
"""

import numpy as np
from conftest import run_once

from repro.core.channel import ChannelSet
from repro.netsim.rng import RngRegistry
from repro.protocol.config import ProtocolConfig
from repro.protocol.remicss import PointToPointNetwork
from repro.sharing.robust import robust_reconstruct
from repro.sharing.shamir import ShamirScheme

SECRET = bytes(range(256)) * 5
scheme = ShamirScheme()


def test_robust_decode_clean(benchmark):
    shares = scheme.split(SECRET, 2, 5, np.random.default_rng(0))
    result = benchmark(robust_reconstruct, shares)
    assert result.secret == SECRET


def test_robust_decode_with_corruption(benchmark):
    shares = scheme.split(SECRET, 2, 5, np.random.default_rng(0))
    data = bytearray(shares[1].data)
    data[0] ^= 0xFF
    from repro.sharing.base import Share

    shares[1] = Share(index=shares[1].index, data=bytes(data), k=2, m=5)
    result = benchmark(robust_reconstruct, shares)
    assert result.secret == SECRET
    assert result.corrupted


def test_plain_decode_baseline(benchmark):
    shares = scheme.split(SECRET, 2, 5, np.random.default_rng(0))[:2]
    result = benchmark(scheme.reconstruct, shares)
    assert result == SECRET


def test_byzantine_end_to_end_integrity(benchmark):
    """Goodput and integrity with a 30%-tampering channel, e = 0 vs e = 1."""

    def run(byzantine_tolerance):
        channels = ChannelSet.from_vectors(
            risks=[0.0] * 4, losses=[0.0] * 4, delays=[0.01] * 4, rates=[100.0] * 4
        )
        registry = RngRegistry(13)
        network = PointToPointNetwork(channels, 256, registry)
        network.duplex[0].forward.corruption = 0.3
        config = ProtocolConfig(
            kappa=2.0, mu=4.0, symbol_size=256,
            byzantine_tolerance=byzantine_tolerance,
        )
        node_a, node_b = network.node_pair(config, registry)
        delivered = {}
        node_b.on_deliver(lambda seq, payload, delay: delivered.__setitem__(seq, payload))
        payload_rng = registry.stream("payloads")
        sent = []
        engine = network.engine

        def offer():
            payload = payload_rng.bytes(256)
            if node_a.send(payload):
                sent.append(payload)

        for i in range(500):
            engine.schedule_at(i * 0.05, offer)
        engine.run_until(40.0)
        intact = sum(1 for seq, payload in delivered.items() if payload == sent[seq])
        return len(delivered), intact

    def run_both():
        return run(0), run(1)

    (plain_total, plain_intact), (robust_total, robust_intact) = run_once(
        benchmark, run_both
    )
    print(
        f"\nByzantine ablation (30% tampering on 1 of 4 channels):"
        f"\n  e=0: {plain_intact}/{plain_total} delivered intact"
        f"\n  e=1: {robust_intact}/{robust_total} delivered intact"
    )
    assert plain_intact < plain_total  # corruption got through
    assert robust_intact == robust_total  # robust decoding corrected it all
