"""Microbenchmarks: the building blocks behind the figure reproductions.

These back the paper's feasibility claim ("secret sharing protocols can be
efficiently implemented"): share splitting/reconstruction throughput, LP
solve time for the schedule programs, subset-property evaluation, and raw
simulator event throughput.
"""

import numpy as np
import pytest

from repro.core.program import Objective, build_program
from repro.core.properties import subset_delay, subset_loss, subset_risk
from repro.lp import solve
from repro.netsim.engine import Engine
from repro.sharing.shamir import ShamirScheme
from repro.sharing.xor import XorScheme
from repro.workloads.setups import diverse_setup, lossy_setup

SYMBOL = bytes(range(256)) * 5  # 1280 bytes, ~one datagram payload


@pytest.fixture(scope="module")
def channels():
    return lossy_setup()


class TestSharingThroughput:
    def test_shamir_split_3_of_5(self, benchmark):
        scheme = ShamirScheme()
        rng = np.random.default_rng(0)
        shares = benchmark(scheme.split, SYMBOL, 3, 5, rng)
        assert len(shares) == 5

    def test_shamir_reconstruct_3_of_5(self, benchmark):
        scheme = ShamirScheme()
        shares = scheme.split(SYMBOL, 3, 5, np.random.default_rng(0))[:3]
        result = benchmark(scheme.reconstruct, shares)
        assert result == SYMBOL

    def test_shamir_split_high_threshold(self, benchmark):
        scheme = ShamirScheme()
        rng = np.random.default_rng(0)
        shares = benchmark(scheme.split, SYMBOL, 5, 5, rng)
        assert len(shares) == 5

    def test_xor_split_5_of_5(self, benchmark):
        scheme = XorScheme()
        rng = np.random.default_rng(0)
        shares = benchmark(scheme.split, SYMBOL, 5, 5, rng)
        assert len(shares) == 5


class TestModelEvaluation:
    def test_subset_risk_full_set(self, benchmark, channels):
        value = benchmark(subset_risk, channels, 3, range(5))
        assert 0.0 <= value <= 1.0

    def test_subset_loss_full_set(self, benchmark, channels):
        value = benchmark(subset_loss, channels, 3, range(5))
        assert 0.0 <= value <= 1.0

    def test_subset_delay_full_set(self, benchmark, channels):
        value = benchmark(subset_delay, channels, 3, range(5))
        assert value >= 0.0


class TestLpSolve:
    def _program(self, channels, at_max_rate):
        return build_program(
            channels, Objective.LOSS, kappa=2.0, mu=3.4, at_max_rate=at_max_rate
        )[0]

    def test_free_program_scipy(self, benchmark, channels):
        program = self._program(channels, at_max_rate=False)
        solution = benchmark(solve, program, "scipy")
        assert solution.objective >= 0.0

    def test_maxrate_program_scipy(self, benchmark, channels):
        program = self._program(channels, at_max_rate=True)
        solution = benchmark(solve, program, "scipy")
        assert solution.objective >= 0.0

    def test_maxrate_program_simplex(self, benchmark, channels):
        program = self._program(channels, at_max_rate=True)
        solution = benchmark(solve, program, "simplex")
        assert solution.objective >= 0.0


class TestSimulatorThroughput:
    def test_engine_event_throughput(self, benchmark):
        def run_events():
            engine = Engine()

            def chain(remaining):
                if remaining:
                    engine.schedule(0.001, chain, remaining - 1)

            chain_count = 20
            for _ in range(chain_count):
                engine.schedule(0.0, chain, 500)
            engine.run()
            return engine.events_processed

        processed = benchmark(run_events)
        assert processed == 20 * 501

    def test_protocol_symbol_throughput(self, benchmark):
        """End-to-end simulated symbols per wall-second (synthetic shares)."""
        from repro.protocol.config import ProtocolConfig
        from repro.workloads.iperf import run_iperf

        channels = diverse_setup()
        config = ProtocolConfig(kappa=2.0, mu=3.0, share_synthetic=True)

        result = benchmark.pedantic(
            run_iperf,
            args=(channels, config),
            kwargs={"offered_rate": 100.0, "duration": 10.0, "warmup": 1.0},
            rounds=1,
            iterations=1,
        )
        assert result.symbols_delivered > 500
