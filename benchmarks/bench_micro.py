"""Microbenchmarks: the building blocks behind the figure reproductions.

These back the paper's feasibility claim ("secret sharing protocols can be
efficiently implemented"): share splitting/reconstruction throughput --
scalar reference oracle vs. the vectorized batch pipeline -- LP solve time
for the schedule programs, subset-property evaluation, and raw simulator
event throughput.

Run under pytest for the pytest-benchmark timings, or directly to emit the
committed throughput trend (see ``BENCH_micro.json`` at the repo root and
``tests/test_bench_schema.py``)::

    PYTHONPATH=src python benchmarks/bench_micro.py --json BENCH_micro.json
    PYTHONPATH=src python benchmarks/bench_micro.py --quick --check BENCH_micro.json

``--check`` re-times the quick configuration and fails (exit 1) if the
batch-over-scalar split speedup has regressed more than 20% relative to
the committed baseline.  The gate compares *speedups*, not absolute MB/s,
so it is meaningful across machines of different strength.
"""

import argparse
import json
import sys
import time

import numpy as np
import pytest

from repro.core.program import Objective, build_program
from repro.core.properties import subset_delay, subset_loss, subset_risk
from repro.lp import solve
from repro.netsim.engine import Engine
from repro.sharing.ramp import RampScheme
from repro.sharing.reference import (
    scalar_ramp_reconstruct,
    scalar_ramp_split,
    scalar_shamir_reconstruct,
    scalar_shamir_split,
    scalar_xor_reconstruct,
    scalar_xor_split,
)
from repro.sharing.shamir import ShamirScheme
from repro.sharing.xor import XorScheme
from repro.workloads.setups import diverse_setup, lossy_setup

SYMBOL = bytes(range(256)) * 5  # 1280 bytes, ~one datagram payload

#: Regression tolerance for the --check gate: the measured batch/scalar
#: speedup may not drop below this fraction of the committed speedup.
CHECK_TOLERANCE = 0.8


@pytest.fixture
def channels():
    # Function-scoped on purpose: lossy_setup() returns stateful Link
    # objects, and a module-scoped instance would let one benchmark class
    # leak mutated link state into the next.
    return lossy_setup()


class TestSharingThroughput:
    def test_shamir_split_3_of_5(self, benchmark):
        scheme = ShamirScheme()
        rng = np.random.default_rng(0)
        shares = benchmark(scheme.split, SYMBOL, 3, 5, rng)
        assert len(shares) == 5

    def test_shamir_reconstruct_3_of_5(self, benchmark):
        scheme = ShamirScheme()
        shares = scheme.split(SYMBOL, 3, 5, np.random.default_rng(0))[:3]
        result = benchmark(scheme.reconstruct, shares)
        assert result == SYMBOL

    def test_shamir_split_high_threshold(self, benchmark):
        scheme = ShamirScheme()
        rng = np.random.default_rng(0)
        shares = benchmark(scheme.split, SYMBOL, 5, 5, rng)
        assert len(shares) == 5

    def test_shamir_split_many_batch(self, benchmark):
        scheme = ShamirScheme()
        rng = np.random.default_rng(0)
        batch = [SYMBOL] * 16
        groups = benchmark(scheme.split_many, batch, 3, 5, rng)
        assert len(groups) == 16

    def test_xor_split_5_of_5(self, benchmark):
        scheme = XorScheme()
        rng = np.random.default_rng(0)
        shares = benchmark(scheme.split, SYMBOL, 5, 5, rng)
        assert len(shares) == 5


class TestScalarOracleThroughput:
    """The per-byte reference path, for the batch-vs-scalar trend."""

    def test_scalar_shamir_split_3_of_5(self, benchmark):
        rng = np.random.default_rng(0)
        shares = benchmark(scalar_shamir_split, SYMBOL, 3, 5, rng)
        assert len(shares) == 5

    def test_scalar_shamir_reconstruct_3_of_5(self, benchmark):
        shares = scalar_shamir_split(SYMBOL, 3, 5, np.random.default_rng(0))[:3]
        result = benchmark(scalar_shamir_reconstruct, shares)
        assert result == SYMBOL


class TestModelEvaluation:
    def test_subset_risk_full_set(self, benchmark, channels):
        value = benchmark(subset_risk, channels, 3, range(5))
        assert 0.0 <= value <= 1.0

    def test_subset_loss_full_set(self, benchmark, channels):
        value = benchmark(subset_loss, channels, 3, range(5))
        assert 0.0 <= value <= 1.0

    def test_subset_delay_full_set(self, benchmark, channels):
        value = benchmark(subset_delay, channels, 3, range(5))
        assert value >= 0.0


class TestLpSolve:
    def _program(self, channels, at_max_rate):
        return build_program(
            channels, Objective.LOSS, kappa=2.0, mu=3.4, at_max_rate=at_max_rate
        )[0]

    def test_free_program_scipy(self, benchmark, channels):
        program = self._program(channels, at_max_rate=False)
        solution = benchmark(solve, program, "scipy")
        assert solution.objective >= 0.0

    def test_maxrate_program_scipy(self, benchmark, channels):
        program = self._program(channels, at_max_rate=True)
        solution = benchmark(solve, program, "scipy")
        assert solution.objective >= 0.0

    def test_maxrate_program_simplex(self, benchmark, channels):
        program = self._program(channels, at_max_rate=True)
        solution = benchmark(solve, program, "simplex")
        assert solution.objective >= 0.0


class TestSimulatorThroughput:
    def test_engine_event_throughput(self, benchmark):
        def run_events():
            engine = Engine()

            def chain(remaining):
                if remaining:
                    engine.schedule(0.001, chain, remaining - 1)

            chain_count = 20
            for _ in range(chain_count):
                engine.schedule(0.0, chain, 500)
            engine.run()
            return engine.events_processed

        processed = benchmark(run_events)
        assert processed == 20 * 501

    def test_protocol_symbol_throughput(self, benchmark):
        """End-to-end simulated symbols per wall-second (synthetic shares)."""
        from repro.protocol.config import ProtocolConfig
        from repro.workloads.iperf import run_iperf

        channels = diverse_setup()
        config = ProtocolConfig(kappa=2.0, mu=3.0, share_synthetic=True)

        result = benchmark.pedantic(
            run_iperf,
            args=(channels, config),
            kwargs={"offered_rate": 100.0, "duration": 10.0, "warmup": 1.0},
            rounds=1,
            iterations=1,
        )
        assert result.symbols_delivered > 500


# --------------------------------------------------------------------------
# Committed throughput trend (BENCH_micro.json) and the regression gate.


#: Minimum wall time per timing sample; fast kernels (a few us per call)
#: are looped until a sample is at least this long so the recorded
#: speedups are stable enough for the 20% regression gate.
MIN_SAMPLE_SECONDS = 0.02


def _throughput_mbps(fn, payload_bytes: int, repeats: int) -> float:
    """Best-of-``repeats`` throughput of ``fn`` in MB/s over ``payload_bytes``."""
    started = time.perf_counter()
    fn()  # warmup (table caches, allocator) doubling as calibration probe
    probe = time.perf_counter() - started
    iterations = max(1, int(MIN_SAMPLE_SECONDS / probe) if probe > 0 else 1)
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(iterations):
            fn()
        best = min(best, (time.perf_counter() - started) / iterations)
    return payload_bytes / best / 1e6


def _bench_pair(name, scalar_split, batch_split, scalar_rec, batch_rec, repeats):
    """Time one scheme's split/reconstruct on both paths."""
    entry = {}
    for op, scalar_fn, batch_fn in (
        ("split", scalar_split, batch_split),
        ("reconstruct", scalar_rec, batch_rec),
    ):
        scalar = _throughput_mbps(scalar_fn, len(SYMBOL), repeats)
        batch = _throughput_mbps(batch_fn, len(SYMBOL), repeats)
        entry[op] = {
            "scalar_mbps": round(scalar, 3),
            "batch_mbps": round(batch, 3),
            "speedup": round(batch / scalar, 2),
        }
    return name, entry


def run_micro(repeats: int = 5) -> dict:
    """Measure scalar-vs-batch split/reconstruct MB/s for every scheme."""
    shamir = ShamirScheme()
    ramp = RampScheme(blocks=2)
    xor = XorScheme()
    shamir_shares = shamir.split(SYMBOL, 3, 5, np.random.default_rng(0))[:3]
    ramp_shares = ramp.split(SYMBOL, 3, 5, np.random.default_rng(0))[:3]
    xor_shares = xor.split(SYMBOL, 5, 5, np.random.default_rng(0))

    schemes = dict(
        [
            _bench_pair(
                "shamir_3of5",
                lambda: scalar_shamir_split(SYMBOL, 3, 5, np.random.default_rng(0)),
                lambda: shamir.split(SYMBOL, 3, 5, np.random.default_rng(0)),
                lambda: scalar_shamir_reconstruct(shamir_shares),
                lambda: shamir.reconstruct(shamir_shares),
                repeats,
            ),
            _bench_pair(
                "ramp_L2_3of5",
                lambda: scalar_ramp_split(SYMBOL, 3, 5, np.random.default_rng(0), blocks=2),
                lambda: ramp.split(SYMBOL, 3, 5, np.random.default_rng(0)),
                lambda: scalar_ramp_reconstruct(ramp_shares, blocks=2),
                lambda: ramp.reconstruct(ramp_shares),
                repeats,
            ),
            _bench_pair(
                "xor_5of5",
                lambda: scalar_xor_split(SYMBOL, 5, 5, np.random.default_rng(0)),
                lambda: xor.split(SYMBOL, 5, 5, np.random.default_rng(0)),
                lambda: scalar_xor_reconstruct(xor_shares),
                lambda: xor.reconstruct(xor_shares),
                repeats,
            ),
        ]
    )
    return {
        "schema": "bench-micro/1",
        "payload_bytes": len(SYMBOL),
        "repeats": repeats,
        "schemes": schemes,
    }


def check_against_baseline(results: dict, baseline: dict) -> "list[str]":
    """Speedup-ratio regression gate; returns failure messages (empty = pass)."""
    failures = []
    for scheme, ops in baseline["schemes"].items():
        for op, committed in ops.items():
            current = results["schemes"][scheme][op]["speedup"]
            floor = committed["speedup"] * CHECK_TOLERANCE
            if current < floor:
                failures.append(
                    f"{scheme}.{op}: batch/scalar speedup {current:.1f}x is below "
                    f"{CHECK_TOLERANCE:.0%} of the committed {committed['speedup']:.1f}x"
                )
    shamir_split = results["schemes"]["shamir_3of5"]["split"]["speedup"]
    if shamir_split < 10.0:
        failures.append(
            f"shamir_3of5.split: batch path is only {shamir_split:.1f}x the scalar "
            "oracle; the vectorized pipeline promises >= 10x on the SYMBOL payload"
        )
    return failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", help="write results as JSON to PATH")
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed BENCH_micro.json; exit 1 on regression",
    )
    parser.add_argument(
        "--quick", action="store_true", help="fewer repeats (CI smoke settings)"
    )
    args = parser.parse_args()

    results = run_micro(repeats=3 if args.quick else 7)
    for scheme, ops in results["schemes"].items():
        for op, row in ops.items():
            print(
                f"{scheme:>14s} {op:<11s} scalar {row['scalar_mbps']:>10.3f} MB/s   "
                f"batch {row['batch_mbps']:>10.3f} MB/s   ({row['speedup']:.1f}x)"
            )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check_against_baseline(results, baseline)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            sys.exit(1)
        print(f"regression gate ok (tolerance {CHECK_TOLERANCE:.0%} of committed speedup)")


if __name__ == "__main__":
    main()
