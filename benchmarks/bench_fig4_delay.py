"""Figure 4 benchmark: optimal vs actual delay at maximum rate (Delayed).

The paper plots the two on separate axes because queueing at maximum rate
dwarfs channel delay in the actual measurements; the assertions check that
relationship and the κ ordering of the optimal curves.
"""

from conftest import run_once

from repro.experiments.fig4 import run_fig4
from repro.experiments.reporting import rows_to_table


def test_fig4_delay_at_max_rate(benchmark):
    rows = run_once(benchmark, run_fig4, quick=True)
    print("\nFigure 4: delay at maximum rate (Delayed setup)")
    print(rows_to_table(rows, ["kappa", "mu", "optimal_delay_ms", "actual_delay_ms"]))
    # Actual includes queueing, so it dominates optimal everywhere.
    assert all(row["actual_delay_ms"] >= row["optimal_delay_ms"] - 0.5 for row in rows)
    # Optimal delay grows with kappa at mu = n (more order statistics to wait for).
    at_full = {row["kappa"]: row["optimal_delay_ms"] for row in rows if row["mu"] == 5.0}
    ordered = [at_full[k] for k in sorted(at_full)]
    assert all(a <= b + 1e-9 for a, b in zip(ordered, ordered[1:]))


def test_fig4_uncongested_ablation(benchmark):
    """At 60% of maximum rate the queues drain and actual approaches optimal
    -- the paper's explanation for the well-behaved regions of Fig. 4."""
    rows = run_once(
        benchmark, run_fig4, kappas=(1.0,), mu_step=2.0,
        duration=8.0, warmup=2.0, offered_fraction=0.6,
    )
    print("\nFigure 4 ablation: 60% offered load")
    print(rows_to_table(rows, ["kappa", "mu", "optimal_delay_ms", "actual_delay_ms"]))
    for row in rows:
        assert row["actual_delay_ms"] < 5.0 * max(row["optimal_delay_ms"], 1.0)
