"""Observability overhead: instrumented vs. uninstrumented iperf runs.

Quantifies what :mod:`repro.obs` costs on the hot path, in four modes on
the same seeded Diverse-setup run:

* ``baseline``       -- no observability object at all (``obs=None``);
* ``disabled``       -- :meth:`Observability.disabled` (null registry and
  tracer wired through every instrumentation point), the "compiled out"
  configuration whose target overhead is ~0%;
* ``metrics``        -- live registry, tracing off (target: <= 5% wall-time
  overhead, and *zero* change in simulated results);
* ``metrics+trace``  -- live registry and tracer.

Because every instrument observes only simulated quantities and draws no
randomness, all four modes must produce byte-for-byte identical simulation
outcomes (goodput, loss, delay); the bench asserts that too.

Run under pytest-benchmark (``pytest benchmarks/bench_obs_overhead.py -s``)
or directly for the JSON comparison::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
"""

import json
import time

from conftest import run_once

from repro.obs import Observability
from repro.protocol.config import ProtocolConfig
from repro.workloads.iperf import practical_max_rate, run_iperf
from repro.workloads.setups import diverse_setup

SEED = 11
WARMUP = 5.0
DURATION = 30.0
#: Timing repetitions per mode; the minimum is reported (standard practice
#: for wall-clock micro-measurements on shared machines).
REPEATS = 5

MODES = ("baseline", "disabled", "metrics", "metrics+trace")


def _make_obs(mode):
    if mode == "baseline":
        return None
    if mode == "disabled":
        return Observability.disabled()
    return Observability.create(tracing=(mode == "metrics+trace"))


def _timed_run(mode):
    """One timed iperf run in the given observability mode."""
    channels = diverse_setup()
    config = ProtocolConfig(kappa=2.0, mu=3.0, share_synthetic=True)
    offered = 0.9 * practical_max_rate(channels, config.mu, config.symbol_size)
    obs = _make_obs(mode)
    started = time.perf_counter()
    result = run_iperf(
        channels,
        config,
        offered_rate=offered,
        duration=DURATION,
        warmup=WARMUP,
        seed=SEED,
        obs=obs,
    )
    elapsed = time.perf_counter() - started
    return elapsed, result, obs


def compare_modes():
    """All four modes as one dict, with overhead relative to baseline.

    Repetitions are interleaved round-robin (and the minimum kept) so CPU
    frequency drift hits every mode equally instead of whichever ran last.
    """
    comparison = {}
    for _repeat in range(REPEATS):
        for mode in MODES:
            elapsed, result, obs = _timed_run(mode)
            row = comparison.get(mode)
            if row is None or elapsed < row["wall_seconds"]:
                row = {
                    "wall_seconds": elapsed,
                    "goodput_symbols_per_unit": result.achieved_rate,
                    "loss_percent": result.loss_percent,
                    "mean_delay_ms": result.mean_delay_ms,
                    "symbols_delivered": result.symbols_delivered,
                }
                if obs is not None:
                    snapshot = obs.registry.snapshot()
                    row["metric_series"] = len(snapshot)
                    row["trace_events"] = len(obs.tracer.events) if obs.tracer.enabled else 0
                comparison[mode] = row
    base = comparison["baseline"]
    for mode, row in comparison.items():
        row["overhead_percent"] = (
            100.0 * (row["wall_seconds"] / base["wall_seconds"] - 1.0)
            if base["wall_seconds"]
            else 0.0
        )
        # Observability must never perturb the simulation itself.
        assert row["goodput_symbols_per_unit"] == base["goodput_symbols_per_unit"], mode
        assert row["symbols_delivered"] == base["symbols_delivered"], mode
        assert row["loss_percent"] == base["loss_percent"], mode
    return comparison


def test_obs_overhead(benchmark):
    comparison = run_once(benchmark, compare_modes)
    assert comparison["metrics"]["metric_series"] > 100
    assert comparison["metrics+trace"]["trace_events"] > 0


if __name__ == "__main__":
    print(json.dumps(compare_modes(), indent=2, sort_keys=True))
