"""Ablations over the design choices DESIGN.md calls out.

1. **Dynamic vs explicit LP share schedule** (the paper's Sec. V
   simplification): how much loss-optimality the readiness heuristic
   gives up relative to an LP-optimal explicit schedule at the same rate.
2. **Limited vs unrestricted schedules** (Sec. IV-E): the paper's
   d = (2, 9, 10) counterexample, quantified.
3. **MICSS baseline vs ReMICSS**: goodput under loss with reliable
   (retransmitting) vs best-effort threshold transport.
"""

import pytest
from conftest import run_once

from repro.core.channel import ChannelSet
from repro.core.program import Objective, optimal_property_value, optimal_schedule
from repro.netsim.rng import RngRegistry
from repro.protocol.config import ProtocolConfig
from repro.protocol.micss import MicssNode
from repro.protocol.remicss import PointToPointNetwork
from repro.workloads.iperf import practical_max_rate, run_iperf
from repro.workloads.setups import lossy_setup


def test_dynamic_vs_explicit_schedule_loss(benchmark):
    """Loss at maximum rate: dynamic heuristic vs LP-optimal schedule."""
    channels = lossy_setup()
    kappa, mu = 2.0, 3.0
    offered = practical_max_rate(channels, mu, 1250)

    def run_both():
        results = {}
        config = ProtocolConfig(kappa=kappa, mu=mu, share_synthetic=True,
                                reassembly_timeout=10.0)
        results["dynamic"] = run_iperf(
            channels, config, offered_rate=offered, duration=20.0, warmup=4.0
        )
        schedule = optimal_schedule(channels, Objective.LOSS, kappa, mu, at_max_rate=True)
        results["explicit"] = run_iperf(
            channels, config, offered_rate=offered, duration=20.0, warmup=4.0,
            schedule=schedule,
        )
        return results

    results = run_once(benchmark, run_both)
    optimal = optimal_property_value(channels, Objective.LOSS, kappa, mu, at_max_rate=True)
    print(f"\nAblation: loss at max rate, κ={kappa}, µ={mu} (optimal {100*optimal:.3f}%)")
    for name, result in results.items():
        print(
            f"  {name:>8}: loss {result.loss_percent:.3f}%  "
            f"rate {result.achieved_mbps:.1f} Mbps"
        )
    # The explicit schedule should be at least as loss-optimal as dynamic
    # (within measurement noise), and both deliver comparable rate.
    assert results["explicit"].loss_percent <= results["dynamic"].loss_percent + 1.0
    assert results["explicit"].achieved_rate == pytest.approx(
        results["dynamic"].achieved_rate, rel=0.1
    )


def test_limited_schedule_delay_cost(benchmark):
    """Sec. IV-E: the courier-model restriction costs delay (2, 9, 10) -> 9 vs 6."""
    channels = ChannelSet.from_vectors(
        risks=[0.0] * 3, losses=[0.0] * 3, delays=[2.0, 9.0, 10.0], rates=[1.0] * 3
    )

    def compute():
        limited = optimal_property_value(
            channels, Objective.DELAY, kappa=2.0, mu=3.0, limited=True
        )
        free = optimal_property_value(
            channels, Objective.DELAY, kappa=2.0, mu=3.0, limited=False
        )
        return limited, free

    limited, free = run_once(benchmark, compute)
    print(f"\nAblation: limited-schedule delay {limited:.3f} vs unrestricted {free:.3f}")
    assert limited == pytest.approx(9.0)
    assert free == pytest.approx(6.0)


def test_micss_vs_remicss_goodput_under_loss(benchmark):
    """Reliable MICSS transport stalls under loss; ReMICSS sheds it."""
    channels = ChannelSet.from_vectors(
        risks=[0.0] * 3,
        losses=[0.03, 0.03, 0.03],
        delays=[0.05] * 3,
        rates=[50.0] * 3,
    )

    def run_micss():
        registry = RngRegistry(11)
        network = PointToPointNetwork(channels, 1250, registry)
        node_a = MicssNode(
            network.engine, network.ports_a_out, network.ports_a_in,
            1250, registry, name="a",
        )
        node_b = MicssNode(
            network.engine, network.ports_b_out, network.ports_b_in,
            1250, registry, name="b",
        )
        delivered = []
        node_b.on_deliver(lambda seq, payload, delay: delivered.append(seq))
        engine = network.engine
        payload = bytes(1250)

        def offer():
            node_a.send(payload)
            if engine.now < 40.0:
                engine.schedule(0.01, offer)  # offer at 100 symbols/unit

        engine.schedule_at(0.0, offer)
        engine.run_until(60.0)
        return len(delivered) / 60.0, node_a.stats.retransmissions

    def run_remicss():
        config = ProtocolConfig(kappa=3.0, mu=3.0, share_synthetic=True,
                                reassembly_timeout=10.0)
        result = run_iperf(channels, config, offered_rate=100.0, duration=40.0, warmup=5.0)
        return result

    micss_rate, retransmissions = run_once(benchmark, run_micss)
    remicss = run_remicss()
    print(
        f"\nAblation: goodput under 3% loss -- MICSS {micss_rate:.1f} sym/unit "
        f"({retransmissions} retransmissions) vs ReMICSS κ=µ=n "
        f"{remicss.achieved_rate:.1f} sym/unit (loss {remicss.loss_percent:.2f}%, "
        f"0 retransmissions)"
    )
    # MICSS delivers everything eventually but needs retransmissions and
    # stalls; ReMICSS at the same κ=µ=n sends faster but loses l(n, C).
    assert retransmissions > 0
    assert remicss.achieved_rate > micss_rate


def test_simplex_vs_scipy_agreement_sweep(benchmark):
    """Backend ablation: the from-scratch simplex tracks HiGHS on a sweep."""
    channels = lossy_setup()

    def sweep():
        gaps = []
        for kappa in (1.0, 2.0, 3.0):
            for mu in (kappa, min(5.0, kappa + 1.5), 5.0):
                ours = optimal_property_value(
                    channels, Objective.LOSS, kappa, mu, at_max_rate=True,
                    backend="simplex",
                )
                ref = optimal_property_value(
                    channels, Objective.LOSS, kappa, mu, at_max_rate=True,
                    backend="scipy",
                )
                gaps.append(abs(ours - ref))
        return gaps

    gaps = run_once(benchmark, sweep)
    print(f"\nAblation: simplex vs HiGHS max gap {max(gaps):.2e} over {len(gaps)} programs")
    assert max(gaps) < 1e-7
