"""Figure 7 benchmark: increasing channel rate, µ = 5, κ in 1..5.

The paper's observation: κ barely affects rate during normal operation but
once the end systems saturate, larger κ falls short of optimal sooner.
"""

from conftest import run_once

from repro.experiments.fig67 import run_fig7, saturation_point
from repro.experiments.reporting import rows_to_table


def test_fig7_high_bandwidth(benchmark):
    rows = run_once(benchmark, run_fig7, quick=True)
    print("\nFigure 7: Identical setup, increasing channel rate, µ = 5")
    print(
        rows_to_table(
            rows, ["kappa", "channel_mbps", "optimal_mbps", "achieved_mbps"], precision=1
        )
    )
    kappas = sorted({row["kappa"] for row in rows})
    points = {}
    for kappa in kappas:
        subset = [row for row in rows if row["kappa"] == kappa]
        points[kappa] = saturation_point(subset)
        print(f"κ={kappa}: departs optimal at ~{points[kappa]} Mbps/channel")
    # At low channel rates every kappa is near-optimal.
    low = [row for row in rows if row["channel_mbps"] == 100.0]
    assert all(row["achieved_mbps"] > 0.95 * row["optimal_mbps"] for row in low)
    # Larger kappa saturates no later than smaller kappa.
    ordered = [points[k] for k in kappas]
    assert all(a >= b or b == float("inf") for a, b in zip(ordered, ordered[1:]))
