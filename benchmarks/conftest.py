"""Shared helpers for the benchmark suite.

Each ``bench_fig*.py`` regenerates one figure of the paper's evaluation at
benchmark-friendly (coarse) sweep settings, printing the same series the
figure plots and asserting its qualitative shape.  Timings are collected by
pytest-benchmark; run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from typing import Callable


def run_once(benchmark, fn: Callable, *args, **kwargs):
    """Benchmark an expensive experiment driver with a single round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
