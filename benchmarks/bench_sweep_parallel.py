"""Sweep orchestration: serial vs. process-pool wall time, equal results.

Runs the same quick Figure 3 sweep through :class:`repro.sweep.SweepRunner`
at ``jobs=1`` and ``jobs=N`` and

* **asserts the result rows are identical** across job counts (per-point
  seeds derive from point identity, so parallelism may never change a
  number), and
* records the wall-time speedup -- the whole reason the subsystem exists.

Run under pytest (``pytest benchmarks/bench_sweep_parallel.py -s``) or
directly for the JSON comparison::

    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py          # full
    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py --quick  # CI
"""

import argparse
import json
import os
import time

from repro.experiments.fig3 import fig3_point, fig3_spec
from repro.sweep import SweepRunner, values

#: Job counts compared against the serial reference.
PARALLEL_JOBS = (2, 4)


def _spec(quick: bool):
    """The benchmark sweep: quick mode is sized for a CI smoke run."""
    if quick:
        return fig3_spec(
            setup="identical", kappas=(1.0, 2.0), mu_step=1.0, duration=4.0, warmup=1.0
        )
    return fig3_spec(
        setup="diverse", kappas=(1.0, 2.0, 3.0), mu_step=0.25, duration=10.0, warmup=2.0
    )


def run_comparison(quick: bool = False) -> dict:
    """Time the sweep at each job count; assert rows equal across all."""
    spec = _spec(quick)
    comparison = {"points": len(spec), "modes": {}}
    reference = None
    for jobs in (1,) + PARALLEL_JOBS:
        runner = SweepRunner(jobs=jobs)
        started = time.perf_counter()
        rows = values(runner.run(spec, fig3_point))
        elapsed = time.perf_counter() - started
        if reference is None:
            reference = rows
            serial_time = elapsed
        else:
            assert rows == reference, (
                f"jobs={jobs} produced different rows than jobs=1 -- "
                "per-point determinism is broken"
            )
        comparison["modes"][f"jobs={jobs}"] = {
            "wall_s": round(elapsed, 3),
            "speedup": round(serial_time / elapsed, 2),
        }
    comparison["equal_across_jobs"] = True
    return comparison


def test_parallel_matches_serial(benchmark):
    """pytest-benchmark entry point (quick sweep, jobs=2 vs jobs=1)."""
    spec = _spec(quick=True)
    serial = values(SweepRunner(jobs=1).run(spec, fig3_point))
    parallel = benchmark.pedantic(
        lambda: values(SweepRunner(jobs=2).run(spec, fig3_point)),
        rounds=1,
        iterations=1,
    )
    assert parallel == serial


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small grid for the CI smoke step"
    )
    args = parser.parse_args()
    comparison = run_comparison(quick=args.quick)
    print(json.dumps(comparison, indent=2))
    out_dir = os.path.join(os.path.dirname(__file__), "..", "results")
    os.makedirs(out_dir, exist_ok=True)
    out_path = os.path.join(out_dir, "bench_sweep_parallel.json")
    with open(out_path, "w") as handle:
        json.dump(comparison, handle, indent=2)
        handle.write("\n")
    print(f"written to {os.path.normpath(out_path)}")


if __name__ == "__main__":
    main()
