"""Figure 3 benchmark: optimal vs achieved rate over (κ, µ).

Left panel: Identical setup (100 Mbps x 5).  Right panel: Diverse setup
(5, 20, 60, 65, 100 Mbps).  The paper reports the protocol within 3% of
optimal on Identical and 4% on Diverse; the series below reproduce the
smooth (Corollary 1) vs bumpy (Theorem 2 boundaries) contrast.
"""

from conftest import run_once

from repro.experiments.fig3 import run_fig3
from repro.experiments.reporting import rows_to_table, summarize_ratio


def test_fig3_identical_rate(benchmark):
    rows = run_once(benchmark, run_fig3, setup="identical", quick=True)
    print("\nFigure 3 (left): Identical setup, optimal vs achieved rate")
    print(rows_to_table(rows, ["kappa", "mu", "optimal_mbps", "achieved_mbps", "ratio"]))
    print(summarize_ratio(rows, "achieved_rate", "optimal_rate"))
    assert all(row["ratio"] > 0.96 for row in rows)
    assert all(row["ratio"] <= 1.0 + 1e-9 for row in rows)


def test_fig3_diverse_rate(benchmark):
    rows = run_once(benchmark, run_fig3, setup="diverse", quick=True)
    print("\nFigure 3 (right): Diverse setup, optimal vs achieved rate")
    print(rows_to_table(rows, ["kappa", "mu", "optimal_mbps", "achieved_mbps", "ratio"]))
    print(summarize_ratio(rows, "achieved_rate", "optimal_rate"))
    # The paper reports within 4% of optimal "aside from slightly anomalous
    # behavior in the vicinity of µ = 3.4"; the dynamic scheduler shows the
    # same localized dip here, so the bound is checked in two tiers.
    assert all(row["ratio"] > 0.93 for row in rows)
    within_four_percent = sum(1 for row in rows if row["ratio"] > 0.96)
    assert within_four_percent >= 0.8 * len(rows)
    # The bumpy-curve check: on Diverse, optimal rate falls with mu and the
    # protocol follows it through each full-utilisation boundary.
    k1 = [row for row in rows if row["kappa"] == 1.0]
    optima = [row["optimal_rate"] for row in k1]
    assert all(a >= b - 1e-9 for a, b in zip(optima, optima[1:]))
