"""Fleet-scale benchmark: throughput, memory-per-flow, parity gates.

Measures the fleet executor (docs/FLEET.md) at >= 1024 concurrent flows
and verifies its two structural guarantees:

* **shard parity** -- the merged report's delivery fingerprint is
  byte-identical for ``shards=1`` and ``shards=2``;
* **batch identity** -- a cell run with ``sender_batch_limit=8`` and
  coalesced reconstruction produces the same per-flow digests and
  protocol counters as the per-symbol path under the same seed (the
  send hot path goes through ``split_many`` without changing one wire
  byte).

``--check BENCH_fleet.json`` gates CI: the parity booleans must hold
exactly, delivery must stay complete, and memory-per-flow may not grow
more than 1/CHECK_TOLERANCE over the committed baseline (a ratio, so the
gate is machine-independent).  Throughput (flows/sec) is recorded as a
trend only -- absolute speed is machine-dependent.

Usage:
    PYTHONPATH=src python benchmarks/bench_fleet.py [--quick]
        [--json PATH] [--check BASELINE]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc

from repro.fleet import synthesize_fleet
from repro.fleet.cell import run_cell
from repro.workloads.fleet import run_fleet

#: Ratio floor for gated metrics (matches bench_micro).
CHECK_TOLERANCE = 0.8

#: Seed for the direct-cell batch-identity measurement (any value works;
#: fixed so the measurement is reproducible).
CELL_SEED = 20160628  # DSN'16 opening day


def _cell_params(batch: bool) -> dict:
    fleet = synthesize_fleet(16, symbols=8)
    return {
        "cell": 0,
        "tenants": [tenant.as_dict() for tenant in fleet.tenants],
        "flows": [flow.as_dict() for flow in fleet.flows],
        "channels": 4,
        "loss": 0.0,
        "delay": 0.05,
        "rate": 64.0,
        "symbol_size": 256,
        "synthetic": False,
        "quantum": 1.0,
        "queue_limit": 64,
        "sender_batch_limit": 8 if batch else 1,
        "batch_reconstruct": batch,
    }


def _strip_engine_internals(result: dict) -> dict:
    """Drop fields batching legitimately changes (event bookkeeping only)."""
    trimmed = dict(result)
    trimmed.pop("events", None)
    return trimmed


def run_fleet_bench(flows: int = 1024, quick: bool = False) -> dict:
    """Measure the fleet executor; returns the JSON-able result document.

    ``quick`` shrinks only the parity re-runs: the scale measurement
    always uses the full ``flows`` count, because memory-per-flow mixes a
    fixed overhead with a linear term and is only comparable against the
    committed baseline at the same fleet size.
    """
    symbols = 4

    # Scale run (serial, so tracemalloc sees every allocation).
    tracemalloc.start()
    started = time.perf_counter()
    report = run_fleet(flows=flows, shards=1, symbols_per_flow=symbols)
    wall = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # Shard parity on a smaller fleet (two full executions).
    parity_flows = 64 if quick else 128
    serial = run_fleet(flows=parity_flows, shards=1, spec_id="fleet/parity")
    sharded = run_fleet(flows=parity_flows, shards=2, spec_id="fleet/parity")

    # Batch identity and speed on one real-share cell, same seed both ways.
    batched_params = _cell_params(batch=True)
    scalar_params = _cell_params(batch=False)
    started = time.perf_counter()
    batched = run_cell(batched_params, CELL_SEED)
    batched_wall = time.perf_counter() - started
    started = time.perf_counter()
    scalar = run_cell(scalar_params, CELL_SEED)
    scalar_wall = time.perf_counter() - started

    return {
        "schema": "bench-fleet/1",
        "flows": flows,
        "symbols_per_flow": symbols,
        "delivered_fraction": report.delivered_total / (flows * symbols),
        "flows_per_sec": flows / wall,
        "memory_per_flow_kib": peak / flows / 1024.0,
        "peak_mib": peak / 1024.0 / 1024.0,
        "shard_parity": serial.fleet_digest == sharded.fleet_digest,
        "batch_identical": (
            _strip_engine_internals(batched) == _strip_engine_internals(scalar)
        ),
        "batch_speedup": scalar_wall / batched_wall if batched_wall > 0 else 0.0,
    }


def check_against_baseline(results: dict, baseline: dict) -> "list[str]":
    """Parity + ratio regression gates; returns failure messages."""
    failures = []
    if not results["shard_parity"]:
        failures.append("shard_parity: sharded report diverged from the serial run")
    if not results["batch_identical"]:
        failures.append(
            "batch_identical: the batched send/reconstruct path changed the "
            "cell's delivery digests or counters"
        )
    if results["delivered_fraction"] < 1.0:
        failures.append(
            f"delivered_fraction: {results['delivered_fraction']:.4f} < 1.0 "
            "(lossless fleet must deliver every symbol)"
        )
    ceiling = baseline["memory_per_flow_kib"] / CHECK_TOLERANCE
    if results["memory_per_flow_kib"] > ceiling:
        failures.append(
            f"memory_per_flow_kib: {results['memory_per_flow_kib']:.1f} KiB "
            f"exceeds {1 / CHECK_TOLERANCE:.0%} of the committed "
            f"{baseline['memory_per_flow_kib']:.1f} KiB"
        )
    return failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", help="write results as JSON to PATH")
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed BENCH_fleet.json; exit 1 on regression",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller fleet (CI smoke settings)"
    )
    parser.add_argument("--flows", type=int, default=1024, help="fleet size")
    args = parser.parse_args()

    results = run_fleet_bench(flows=args.flows, quick=args.quick)
    print(
        f"fleet bench: flows={results['flows']} "
        f"flows_per_sec={results['flows_per_sec']:.1f} "
        f"memory_per_flow={results['memory_per_flow_kib']:.1f} KiB "
        f"(peak {results['peak_mib']:.1f} MiB)"
    )
    print(
        f"shard_parity={results['shard_parity']} "
        f"batch_identical={results['batch_identical']} "
        f"batch_speedup={results['batch_speedup']:.2f}x "
        f"delivered_fraction={results['delivered_fraction']:.4f}"
    )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check_against_baseline(results, baseline)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            raise SystemExit(1)
        print("fleet bench check: ok")


if __name__ == "__main__":
    main()
