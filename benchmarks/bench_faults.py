"""ReMICSS under canonical faults: goodput/delay versus the fault-free baseline.

The paper's evaluation shapes every channel once per run; this bench
measures what the protocol loses -- and keeps -- when channels misbehave
mid-run.  Each canonical scenario from :mod:`repro.netsim.faults` (flap,
burst loss, delay spike, rate cut, partition/heal) is injected into the
middle of a Diverse-setup measurement window and compared against the
fault-free baseline on goodput and mean one-way delay.

Run under pytest-benchmark (``pytest benchmarks/bench_faults.py -s``) or
directly for the JSON comparison::

    PYTHONPATH=src python benchmarks/bench_faults.py
"""

import json

from conftest import run_once

from repro.protocol.config import ProtocolConfig
from repro.workloads.iperf import practical_max_rate, run_iperf
from repro.workloads.setups import FAULT_SCENARIOS, diverse_setup
from repro.workloads.setups import testbed_fault_plan as fault_plan_for

SEED = 11
WARMUP = 5.0
DURATION = 30.0
#: Faults land inside the measurement window: [100 ms, 250 ms] on the
#: paper's axis = unit times [10, 25] with warmup 5 and duration 30.
START_MS, STOP_MS = 100.0, 250.0
#: Fault the 100 Mbps channel -- the one the headroom selector leans on
#: hardest, so degradation is visible.
FAULT_CHANNEL = 4


def measure(scenario=None):
    """One iperf-style run; ``scenario`` is a canonical name or None."""
    channels = diverse_setup()
    config = ProtocolConfig(kappa=2.0, mu=3.0, share_synthetic=True)
    offered = 0.9 * practical_max_rate(channels, config.mu, config.symbol_size)
    plan = (
        fault_plan_for(scenario, START_MS, STOP_MS, channel=FAULT_CHANNEL)
        if scenario
        else None
    )
    result = run_iperf(
        channels,
        config,
        offered_rate=offered,
        duration=DURATION,
        warmup=WARMUP,
        seed=SEED,
        fault_plan=plan,
    )
    return {
        "goodput_symbols_per_unit": result.achieved_rate,
        "goodput_mbps": result.achieved_mbps,
        "loss_percent": result.loss_percent,
        "mean_delay_ms": result.mean_delay_ms,
        "symbols_delivered": result.symbols_delivered,
        "fault_events_applied": (
            result.fault_summary["applied"] if result.fault_summary else 0
        ),
    }


def compare_scenarios():
    """Fault-free baseline vs. every canonical scenario, as one dict."""
    comparison = {"baseline": measure()}
    for scenario in FAULT_SCENARIOS:
        comparison[scenario] = measure(scenario)
    baseline = comparison["baseline"]["goodput_symbols_per_unit"]
    for row in comparison.values():
        row["goodput_vs_baseline"] = (
            row["goodput_symbols_per_unit"] / baseline if baseline else 0.0
        )
    return comparison


def test_fault_scenarios_vs_baseline(benchmark):
    comparison = run_once(benchmark, compare_scenarios)
    print("\n" + json.dumps(comparison, indent=2, sort_keys=True))
    baseline = comparison["baseline"]
    assert baseline["symbols_delivered"] > 0
    for scenario in FAULT_SCENARIOS:
        row = comparison[scenario]
        # Faults degrade but never kill the protocol: it keeps delivering.
        assert row["symbols_delivered"] > 0, scenario
        assert row["fault_events_applied"] >= 2, scenario
        assert row["goodput_symbols_per_unit"] <= baseline["goodput_symbols_per_unit"] * 1.01


def main():
    print(json.dumps(compare_scenarios(), indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
